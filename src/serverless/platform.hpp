// ServerlessPlatform: the function invoker tying together the virtual-time
// engine, container pools, latency model, and cost meter.
//
// Learner and parameter functions share the GPU slot pool (capacity =
// GPUs × slots-per-GPU); actors get the CPU-core pool. Invocations that
// find the pool full queue FIFO and dispatch as slots free — the queueing
// that makes learner count vs. learning time non-linear in Fig. 3(a).
//
// Failure plane (src/fault): when a FaultInjector is attached, every
// dispatch consults it — invocations can crash partway through (billed for
// the seconds they consumed), run slow on straggler hosts, or fail their
// cache operations; whole VMs can be reclaimed spot-style, killing every
// container (busy or warm) on that host. `invoke_retrying` layers bounded
// exponential-backoff retries in virtual time on top. Without an injector,
// behaviour and results are bit-identical to the pre-fault platform.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/retry_policy.hpp"
#include "obs/metrics.hpp"
#include "serverless/cluster.hpp"
#include "serverless/container_pool.hpp"
#include "serverless/cost_meter.hpp"
#include "serverless/latency_model.hpp"
#include "sim/driver.hpp"
#include "sim/engine.hpp"

namespace stellaris::serverless {

class ServerlessPlatform {
 public:
  ServerlessPlatform(sim::Engine& engine, ClusterSpec cluster,
                     LatencyModel latency, std::uint64_t seed);

  struct InvokeOptions {
    FnKind kind = FnKind::kLearner;
    double compute_s = 0.0;               ///< pre-jitter compute duration
    std::size_t payload_in_bytes = 0;     ///< input fetched before compute
    std::size_t payload_out_bytes = 0;    ///< output written after compute
    DataTier tier = DataTier::kCache;
    /// Fires when the container is acquired (after any queueing) — the
    /// moment a function "pulls the latest policy" in the paper's workflow.
    /// Under invoke_retrying this fires once per attempt, so a retried
    /// function naturally re-pulls a FRESH policy snapshot (retries do not
    /// silently inflate staleness).
    std::function<void(double start_time_s)> on_start;
    /// Label for this invocation's trace span (static string); falls back
    /// to the function-kind name when unset.
    const char* span_name = nullptr;
    /// Caller-assigned ledger id: stamps this invocation's `invoke` ledger
    /// event so downstream events (trajectories, gradients, aggregations)
    /// can reference the invocation that produced them. 0 = unassigned.
    /// Shared by every attempt of an invoke_retrying chain.
    std::uint64_t ledger_id = 0;
    /// Attempt number within an invoke_retrying chain (1 = first try).
    /// Stamped by invoke_retrying before each resubmit; part of the
    /// per-invocation RNG stream key (sim::invocation_stream).
    std::size_t attempt = 1;
    /// Real-execution handoff (DESIGN.md §14). When set, dispatch() calls
    /// it — on the engine thread, after `on_start` and only when the fault
    /// verdict lets this attempt run to completion — to capture the body's
    /// inputs and hand the body to the engine's driver. The platform joins
    /// the returned job at settle time, just before `cb`, when the attempt
    /// succeeded; a failed attempt's job is abandoned (the container's
    /// output died with it). Fires once per attempt, like on_start.
    std::function<sim::Driver::Job(std::size_t attempt)> spawn_body;
  };

  struct InvokeResult {
    double submit_time_s = 0.0;
    double start_time_s = 0.0;  ///< container acquired (after queueing)
    double end_time_s = 0.0;
    bool cold = false;
    double start_latency_s = 0.0;
    double transfer_s = 0.0;
    double compute_s = 0.0;
    double billed_s = 0.0;
    double cost_usd = 0.0;
    // Failure outcome. Failed invocations still bill the time they consumed.
    bool ok = true;
    fault::ErrorKind error = fault::ErrorKind::kNone;
    /// Set by invoke_retrying: attempts made (1 = no retry) and total
    /// virtual time spent waiting in backoff between them.
    std::size_t attempts = 1;
    double retry_wait_s = 0.0;
  };
  using Callback = std::function<void(const InvokeResult&)>;

  /// Submit an invocation; `cb` fires (in virtual time) at completion —
  /// with result.ok = false if the fault plane failed it.
  void invoke(const InvokeOptions& options, Callback cb);

  /// Submit with recovery: on failure, retries with exponential backoff +
  /// jitter (virtual time) per `policy`, re-entering the dispatch queue
  /// each time. `cb` fires once, with the final outcome; `result.attempts`
  /// and `result.retry_wait_s` describe the chain. Costs of every failed
  /// attempt stay on the meter.
  void invoke_retrying(const InvokeOptions& options,
                       const fault::RetryPolicy& policy, Callback cb);

  /// Attach the fault plane (nullptr detaches). Registers this platform as
  /// the injector's reclamation executor if the plan includes reclaims.
  void set_fault_injector(fault::FaultInjector* injector);
  fault::FaultInjector* fault_injector() { return injector_; }

  /// Pre-warm up to n learner-pool containers (free of charge, per the
  /// paper's cost model).
  std::size_t prewarm_learners(std::size_t n);
  std::size_t prewarm_actors(std::size_t n);

  double now() const { return engine_.now(); }
  sim::Engine& engine() { return engine_; }
  const ClusterSpec& cluster() const { return cluster_; }
  const LatencyModel& latency() const { return latency_; }
  CostMeter& costs() { return costs_; }
  const CostMeter& costs() const { return costs_; }

  /// Busy-slot-seconds accumulated by completed + running learner
  /// invocations up to `now` divided by slots × elapsed: the GPU
  /// utilization metric of Fig. 3(a).
  double gpu_utilization() const;

  std::uint64_t learner_cold_starts() const { return gpu_pool_.cold_starts(); }
  std::uint64_t learner_warm_starts() const { return gpu_pool_.warm_starts(); }
  std::size_t queued(FnKind kind) const;
  std::uint64_t retries() const { return retries_; }
  std::uint64_t giveups() const { return giveups_; }
  std::size_t inflight() const { return inflight_.size(); }

  /// Number of reclaimable VMs (hosts) the cluster maps to.
  std::size_t vm_count() const { return vm_hosts_.size(); }

 private:
  struct Pending {
    InvokeOptions options;
    Callback cb;
    double submit_time;
  };
  /// A dispatched, not-yet-completed invocation — the handle a VM
  /// reclamation uses to fail work mid-flight. Carries the telemetry
  /// context needed at settle time: trace spans and ledger events are
  /// emitted only once the outcome is final (normal completion OR a
  /// reclamation), so a killed invocation's span ends at the kill and a
  /// ledger never contains a span extending past it.
  struct InFlight {
    FnKind kind = FnKind::kLearner;
    std::size_t container = 0;
    InvokeResult result;
    Callback cb;
    const char* span_name = nullptr;
    DataTier tier = DataTier::kCache;
    std::size_t payload_in_bytes = 0;
    std::size_t payload_out_bytes = 0;
    double transfer_in_s = 0.0;
    double transfer_out_s = 0.0;
    double straggler_mult = 1.0;
    double cache_delay_s = 0.0;
    std::uint64_t ledger_id = 0;
    /// Driver job running this invocation's body (null when the caller set
    /// no spawn_body or the fault verdict failed the attempt at dispatch).
    sim::Driver::Job job;
  };
  /// One reclaimable host: a contiguous container-id range in one pool.
  struct VmHost {
    bool gpu_pool = false;
    std::size_t first_slot = 0;
    std::size_t slot_count = 0;
    std::string vm_name;
  };

  ContainerPool& pool_for(FnKind kind);
  std::deque<Pending>& queue_for(FnKind kind);
  double unit_price(FnKind kind) const;
  void try_dispatch(FnKind kind);
  void dispatch(Pending pending);
  void complete(std::uint64_t token);
  /// Cost/metric accounting + completion callback for a finished (or
  /// failed) invocation whose container slot has already been released or
  /// killed. Does NOT dispatch; callers run try_dispatch once their whole
  /// teardown is done.
  void settle_inflight(InFlight& inflight);
  void reclaim_random_vm(Rng& fault_rng);
  /// Trace span + ledger `invoke` event for a settled invocation (called
  /// from settle_inflight, never at dispatch — see InFlight).
  void trace_invocation(const InFlight& inflight) const;
  void ledger_invocation(const InFlight& inflight) const;
  void note_queue_depth(FnKind kind) const;
  void note_inflight(FnKind kind) const;
  static const char* pool_for_name(FnKind kind);

  sim::Engine& engine_;
  ClusterSpec cluster_;
  LatencyModel latency_;
  Rng rng_;
  ContainerPool gpu_pool_;
  ContainerPool actor_pool_;
  std::deque<Pending> gpu_queue_;
  std::deque<Pending> actor_queue_;
  CostMeter costs_;
  double learner_busy_s_ = 0.0;

  // Fault plane.
  fault::FaultInjector* injector_ = nullptr;
  std::vector<VmHost> vm_hosts_;
  std::uint64_t next_token_ = 0;
  std::map<std::uint64_t, InFlight> inflight_;
  // Indexed by training FnKind; kServe never enters this platform (checked
  // at invoke() — the serving tier runs its own data plane, src/serve).
  std::size_t inflight_by_kind_[3] = {0, 0, 0};
  std::uint64_t retries_ = 0;
  std::uint64_t giveups_ = 0;

  // Observability: run-scoped trace tag (captured at construction so all of
  // this platform's tracks group under the owning run) and metric handles.
  std::string trace_tag_;
  obs::Counter* m_invocations_[3];      // indexed by training FnKind
  obs::Counter* m_failed_invocations_;
  obs::Counter* m_retries_;
  obs::Counter* m_giveups_;
  obs::FixedHistogram* m_queue_wait_s_;
  obs::Gauge* m_gpu_queue_depth_;
  obs::Gauge* m_actor_queue_depth_;
};

}  // namespace stellaris::serverless
