// Failing lock-rank cases, one finding per annotated line.
#include "util/annotated_mutex.hpp"

namespace stellaris {

Mutex alpha2_mu{"util/alpha", lock_rank::kAlpha};
Mutex beta2_mu{"core/beta", lock_rank::kBeta};
Mutex dupe2_mu{"core/dupe", lock_rank::kDupe};

// expect: lock-rank
Mutex unranked_mu{"core/unranked"};

// expect: lock-rank
Mutex unnamed_mu{lock_rank::kBeta};

// expect: lock-rank
Mutex rogue_mu{"core/rogue", lock_rank::kBeta};

// expect: lock-rank
Mutex phantom_mu{"core/phantom", lock_rank::kPhantom};

void nested_out_of_order() {
  MutexLock b(beta2_mu);
  // expect: lock-rank
  MutexLock a(alpha2_mu);  // 200 -> 100: decreasing
}

void nested_equal_rank() {
  MutexLock b(beta2_mu);
  // expect: lock-rank
  MutexLock d(dupe2_mu);  // 200 -> 200: equal ranks are peers, never nest
}

}  // namespace stellaris
