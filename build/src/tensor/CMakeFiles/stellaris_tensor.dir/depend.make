# Empty dependencies file for stellaris_tensor.
# This may be replaced when dependencies are built.
