#include "envs/vec_env.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace stellaris::envs {
namespace {

TEST(VecEnv, ResetStacksObservations) {
  VecEnv vec("Hopper", 4, 1);
  Tensor obs = vec.reset_all();
  EXPECT_EQ(obs.shape(), (Shape{4, vec.spec().obs.flat_dim}));
  EXPECT_TRUE(obs.all_finite());
}

TEST(VecEnv, StepBatchShapes) {
  VecEnv vec("Hopper", 3, 2);
  vec.reset_all();
  Tensor actions({3, vec.spec().act_dim});
  auto batch = vec.step(actions);
  EXPECT_EQ(batch.obs.dim(0), 3u);
  EXPECT_EQ(batch.rewards.size(), 3u);
  EXPECT_EQ(batch.dones.size(), 3u);
  EXPECT_EQ(vec.total_steps(), 3u);
}

TEST(VecEnv, DiscreteBatchStep) {
  VecEnv vec("Qbert", 2, 3);
  vec.reset_all();
  auto batch = vec.step_discrete({2, 3});
  EXPECT_EQ(batch.obs.dim(0), 2u);
}

TEST(VecEnv, AutoResetOnDone) {
  VecEnv vec("Hopper", 2, 4);
  vec.reset_all();
  Tensor push = Tensor::full({2, vec.spec().act_dim}, 1.0f);
  std::size_t episodes = 0;
  for (int i = 0; i < 600 && episodes == 0; ++i) {
    auto batch = vec.step(push);
    episodes += batch.episode_returns.size();
    // Even after done, the returned obs must be a valid fresh observation.
    EXPECT_TRUE(batch.obs.all_finite());
  }
  EXPECT_GE(episodes, 1u);
}

TEST(VecEnv, EpisodeReturnsAccumulateRewards) {
  VecEnv vec("Hopper", 1, 5);
  vec.reset_all();
  Tensor zero({1, vec.spec().act_dim});
  double manual = 0.0;
  for (;;) {
    auto batch = vec.step(zero);
    manual += batch.rewards[0];
    if (!batch.episode_returns.empty()) {
      EXPECT_NEAR(batch.episode_returns[0], manual, 1e-9);
      break;
    }
  }
}

TEST(VecEnv, ThreadedMatchesSerial) {
  VecEnv serial("Walker2d", 4, 9, /*threads=*/0);
  VecEnv threaded("Walker2d", 4, 9, /*threads=*/3);
  serial.reset_all();
  threaded.reset_all();
  Rng rng(7);
  for (int step = 0; step < 40; ++step) {
    Tensor actions({4, serial.spec().act_dim});
    for (auto& v : actions.vec())
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
    auto a = serial.step(actions);
    auto b = threaded.step(actions);
    EXPECT_EQ(a.obs.vec(), b.obs.vec());
    EXPECT_EQ(a.rewards, b.rewards);
    EXPECT_EQ(a.dones, b.dones);
  }
}

TEST(VecEnv, WrongActionShapeThrows) {
  VecEnv vec("Hopper", 2, 1);
  vec.reset_all();
  EXPECT_THROW(vec.step(Tensor({3, vec.spec().act_dim})), Error);
  EXPECT_THROW(vec.step_discrete({0}), Error);
}

TEST(VecEnv, ZeroEnvsThrows) { EXPECT_THROW(VecEnv("Hopper", 0, 1), Error); }

}  // namespace
}  // namespace stellaris::envs
