// Queue-depth autoscaler for the serving worker pool (DESIGN.md §15).
//
// Pure decision logic over sampled load — no engine, no clock. ServeEngine
// calls evaluate() on a periodic virtual timer with the current queue depth
// and in-flight count; the policy is:
//
//   desired = clamp(ceil((queued + busy) / queue_per_worker),
//                   min_workers, max_workers)
//   up:   active jumps to desired immediately (the caller prewarms the new
//         containers, which the cost model bills at $0, as in the paper);
//   down: one worker at a time, only after `scale_down_idle_evals`
//         consecutive evaluations wanted fewer — hysteresis so the trailing
//         edge of a burst does not thrash the pool cold.
#pragma once

#include <cstdint>

#include "serve/serve_config.hpp"

namespace stellaris::serve {

class Autoscaler {
 public:
  explicit Autoscaler(AutoscaleConfig cfg);

  /// Workers the engine may run batches on right now.
  std::size_t active() const { return active_; }

  struct Decision {
    std::size_t from = 0;
    std::size_t to = 0;
    bool changed() const { return from != to; }
  };

  /// One evaluation tick. `queued` = requests waiting across all tenants,
  /// `busy` = batches in flight.
  Decision evaluate(std::size_t queued, std::size_t busy);

  std::uint64_t scale_ups() const { return ups_; }
  std::uint64_t scale_downs() const { return downs_; }
  std::size_t peak() const { return peak_; }

 private:
  AutoscaleConfig cfg_;
  std::size_t active_;
  std::size_t peak_;
  std::size_t low_evals_ = 0;
  std::uint64_t ups_ = 0;
  std::uint64_t downs_ = 0;
};

}  // namespace stellaris::serve
