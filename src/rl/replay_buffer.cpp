#include "rl/replay_buffer.hpp"

#include "util/error.hpp"

namespace stellaris::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity, std::uint64_t max_age)
    : capacity_(capacity), max_age_(max_age) {
  STELLARIS_CHECK_MSG(capacity > 0, "replay capacity must be positive");
}

void ReplayBuffer::add(SampleBatch batch) {
  total_timesteps_ += batch.size();
  buffer_.push_back(std::move(batch));
  while (buffer_.size() > capacity_) {
    total_timesteps_ -= buffer_.front().size();
    buffer_.pop_front();
  }
}

void ReplayBuffer::evict_stale(std::uint64_t current_version) {
  if (max_age_ == 0) return;
  while (!buffer_.empty() &&
         buffer_.front().policy_version + max_age_ < current_version) {
    total_timesteps_ -= buffer_.front().size();
    buffer_.pop_front();
  }
}

SampleBatch ReplayBuffer::sample(Rng& rng) const {
  STELLARIS_CHECK_MSG(!buffer_.empty(), "sampling from empty replay buffer");
  return buffer_[rng.uniform_int(buffer_.size())];
}

SampleBatch ReplayBuffer::sample_concat(std::size_t n, Rng& rng) const {
  STELLARIS_CHECK_MSG(n > 0, "sample_concat of zero batches");
  std::vector<SampleBatch> parts;
  parts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) parts.push_back(sample(rng));
  return parts.size() == 1 ? std::move(parts.front())
                           : SampleBatch::concat(parts);
}

}  // namespace stellaris::rl
