#include "util/annotated_mutex.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace stellaris::detail {

namespace {

struct HeldLock {
  const void* mu;
  const char* name;
  int rank;
};

// Per-thread stack of currently held locks, in acquisition order. Lives in
// a function-local thread_local so threads created before first use are
// fine and the vector is destroyed with the thread.
std::vector<HeldLock>& held_stack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

}  // namespace

void lock_order_push(const void* mu, const char* name, int rank) {
  auto& stack = held_stack();
  if (!stack.empty() && rank <= stack.back().rank) {
    // Deliberately abort (not throw): a hierarchy violation is a latent
    // deadlock, and aborting makes it deterministic and test-assertable.
    std::fprintf(stderr,
                 "stellaris lock-order violation: acquiring \"%s\" (rank %d) "
                 "while holding \"%s\" (rank %d); locks must be acquired in "
                 "strictly increasing rank order (see DESIGN.md §11)\n",
                 name, rank, stack.back().name, stack.back().rank);
    std::abort();
  }
  stack.push_back({mu, name, rank});
}

void lock_order_pop(const void* mu) {
  auto& stack = held_stack();
  // Releases are almost always LIFO; MutexLock::unlock() can release out
  // of order, so search from the back.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mu == mu) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace stellaris::detail
