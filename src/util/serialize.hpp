// Binary serialization codec — the stand-in for the Python pickle layer the
// paper uses between actors, learners, and the distributed cache.
//
// Little-endian, length-prefixed, with a per-type tag byte so decoding
// errors are caught instead of silently misreading. Payload sizes reported
// by the codec feed the data-passing latency model (bytes / bandwidth).
//
// Performance discipline (the cache data plane is the only channel between
// actors, learners, and the parameter function, so every byte crosses it):
//
//  - **Single-pass writes.** Every field size is computable up front via
//    the constexpr `wire::size_*` helpers, so message encoders precompute
//    the exact wire size, construct `ByteWriter` with it (one allocation),
//    and then each put_* is a bounds-checked memcpy append. Vectors and
//    raw blobs go through one bulk memcpy, never element-wise.
//  - **Zero-copy reads.** `ByteReader` is a cursor over a borrowed
//    `std::span<const std::uint8_t>` (it never owns or copies the buffer),
//    and the `get_*_into` variants decode into caller-owned containers,
//    reusing their capacity — repeated decodes of stable shapes allocate
//    nothing after warm-up.
//
// The wire format itself is frozen: the sized/into APIs emit and consume
// byte-identical streams to the original element-wise codec (trajectory
// payload sizes feed virtual-time transfer latencies, so figures depend on
// the exact byte count).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace stellaris {

/// Borrowed view over immutable wire bytes.
using ByteSpan = std::span<const std::uint8_t>;

namespace wire {
// Type tags: each primitive is preceded by its tag so corrupted or
// mis-ordered reads fail fast.
inline constexpr std::uint8_t kU8 = 0x01;
inline constexpr std::uint8_t kU32 = 0x02;
inline constexpr std::uint8_t kU64 = 0x03;
inline constexpr std::uint8_t kI64 = 0x04;
inline constexpr std::uint8_t kF32 = 0x05;
inline constexpr std::uint8_t kF64 = 0x06;
inline constexpr std::uint8_t kString = 0x07;
inline constexpr std::uint8_t kF32Vec = 0x08;
inline constexpr std::uint8_t kF64Vec = 0x09;
inline constexpr std::uint8_t kU64Vec = 0x0a;

// Exact wire sizes of each field kind, for precomputing a message's total
// size before writing (ByteWriter's single-allocation contract). u8 is raw
// (no tag); everything else is 1 tag byte + payload.
inline constexpr std::size_t size_u8() { return 1; }
inline constexpr std::size_t size_u32() { return 1 + sizeof(std::uint32_t); }
inline constexpr std::size_t size_u64() { return 1 + sizeof(std::uint64_t); }
inline constexpr std::size_t size_i64() { return 1 + sizeof(std::int64_t); }
inline constexpr std::size_t size_f32() { return 1 + sizeof(float); }
inline constexpr std::size_t size_f64() { return 1 + sizeof(double); }
inline constexpr std::size_t size_string(std::size_t chars) {
  return 1 + sizeof(std::uint32_t) + chars;
}
inline constexpr std::size_t size_f32_vector(std::size_t n) {
  return 1 + sizeof(std::uint64_t) + n * sizeof(float);
}
inline constexpr std::size_t size_f64_vector(std::size_t n) {
  return 1 + sizeof(std::uint64_t) + n * sizeof(double);
}
inline constexpr std::size_t size_u64_vector(std::size_t n) {
  return 1 + sizeof(std::uint64_t) + n * sizeof(std::uint64_t);
}
/// Raw blob: tagged u64 length + n raw bytes (the format of a length
/// prefix written with put_u64 followed by n put_u8 calls).
inline constexpr std::size_t size_bytes(std::size_t n) {
  return 1 + sizeof(std::uint64_t) + n;
}
}  // namespace wire

/// Byte sink. Default-constructed it grows amortized; constructed with the
/// precomputed exact wire size it allocates exactly once and every write is
/// a memcpy append into reserved storage (see wire::size_* helpers).
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Reserve `exact_size` bytes up front — the single-allocation fast path.
  explicit ByteWriter(std::size_t exact_size) { buf_.reserve(exact_size); }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  /// Reserved storage (tests assert the sized constructor allocated once).
  std::size_t capacity() const { return buf_.capacity(); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f32(float v);
  void put_f64(double v);
  void put_string(const std::string& s);
  void put_f32_vector(const std::vector<float>& v) { put_f32_span(v); }
  void put_f64_vector(const std::vector<double>& v) { put_f64_span(v); }
  void put_u64_vector(const std::vector<std::uint64_t>& v) {
    put_u64_span(v);
  }
  // Span variants: bulk-memcpy the elements without requiring a vector.
  void put_f32_span(std::span<const float> v);
  void put_f64_span(std::span<const double> v);
  void put_u64_span(std::span<const std::uint64_t> v);
  /// Raw blob, one memcpy. Wire-compatible with (and replaces) the old
  /// "put_u64(n) then n × put_u8" pattern.
  void put_bytes(ByteSpan blob);

 private:
  void append_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  template <typename T>
  void put_tagged(std::uint8_t tag, T v) {
    buf_.push_back(tag);
    append_raw(&v, sizeof(T));
  }

  std::vector<std::uint8_t> buf_;
};

/// Sequential cursor over a borrowed immutable byte span; throws Error on
/// any tag mismatch or overrun. Never copies or owns the buffer — pair it
/// with a refcounted cache payload to decode without any intermediate copy.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan buf) : data_(buf.data()), size_(buf.size()) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool exhausted() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  float get_f32();
  double get_f64();
  std::string get_string();
  std::vector<float> get_f32_vector();
  std::vector<double> get_f64_vector();
  std::vector<std::uint64_t> get_u64_vector();
  /// Raw blob written by put_bytes (or the legacy u64-length + raw-byte
  /// stream): one bounds check, one memcpy.
  std::vector<std::uint8_t> get_bytes();

  // _into variants: decode into a caller-owned container, reusing its
  // capacity (resize + one memcpy; no allocation once warm). Returns the
  // element count for convenience.
  std::size_t get_f32_vector_into(std::vector<float>& out);
  std::size_t get_f64_vector_into(std::vector<double>& out);
  std::size_t get_u64_vector_into(std::vector<std::uint64_t>& out);
  std::size_t get_bytes_into(std::vector<std::uint8_t>& out);

 private:
  void need(std::size_t n) const {
    if (n > size_ - pos_)
      throw Error("ByteReader overrun: need " + std::to_string(n) +
                  " bytes, have " + std::to_string(size_ - pos_));
  }
  template <typename T>
  T raw() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  /// Tagged element-count prefix of a vector field; validates that the
  /// payload actually fits before the caller sizes its destination.
  std::size_t vec_header(std::uint8_t tag, const char* what,
                         std::size_t elem_size);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace stellaris
