#include "cache/distributed_cache.hpp"

#include "util/error.hpp"

namespace stellaris::cache {

std::uint64_t DistributedCache::put(const std::string& key, Bytes value) {
  std::uint64_t new_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = store_[key];
    resident_bytes_ -= entry.data.size();
    resident_bytes_ += value.size();
    stats_.bytes_written += value.size();
    ++stats_.puts;
    entry.data = std::move(value);
    new_version = ++entry.version;
  }
  cv_.notify_all();
  return new_version;
}

std::optional<CacheValue> DistributedCache::get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.gets;
  auto it = store_.find(key);
  if (it == store_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  stats_.bytes_read += it->second.data.size();
  return CacheValue{it->second.data, it->second.version};
}

CacheValue DistributedCache::get_or_throw(const std::string& key) const {
  auto v = get(key);
  if (!v) throw CacheError("cache miss for required key: " + key);
  return std::move(*v);
}

std::optional<CacheValue> DistributedCache::get_blocking(
    const std::string& key, std::uint64_t min_version,
    std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool ok = cv_.wait_for(lock, timeout, [&] {
    auto it = store_.find(key);
    return it != store_.end() && it->second.version > min_version;
  });
  ++stats_.gets;
  if (!ok) {
    ++stats_.misses;
    return std::nullopt;
  }
  auto it = store_.find(key);
  ++stats_.hits;
  stats_.bytes_read += it->second.data.size();
  return CacheValue{it->second.data, it->second.version};
}

bool DistributedCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.count(key) > 0;
}

std::uint64_t DistributedCache::version(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(key);
  return it == store_.end() ? 0 : it->second.version;
}

bool DistributedCache::erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(key);
  if (it == store_.end()) return false;
  resident_bytes_ -= it->second.data.size();
  ++stats_.erases;
  store_.erase(it);
  return true;
}

std::vector<std::string> DistributedCache::keys_with_prefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = store_.lower_bound(prefix); it != store_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::size_t DistributedCache::erase_prefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t removed = 0;
  auto it = store_.lower_bound(prefix);
  while (it != store_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0) {
    resident_bytes_ -= it->second.data.size();
    ++stats_.erases;
    it = store_.erase(it);
    ++removed;
  }
  return removed;
}

std::size_t DistributedCache::num_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.size();
}

std::size_t DistributedCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

CacheStats DistributedCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void DistributedCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = CacheStats{};
}

void DistributedCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  store_.clear();
  resident_bytes_ = 0;
}

}  // namespace stellaris::cache
