#include "core/policy_io.hpp"

#include "util/serialize.hpp"

namespace stellaris::core {

namespace keys {
std::string trajectory(std::uint64_t id) {
  return "traj/" + std::to_string(id);
}
std::string gradient(std::uint64_t id) { return "grad/" + std::to_string(id); }
}  // namespace keys

std::vector<std::uint8_t> encode_policy(const std::vector<float>& params,
                                        std::uint64_t version) {
  ByteWriter w;
  w.put_u64(version);
  w.put_f32_vector(params);
  return w.take();
}

std::pair<std::vector<float>, std::uint64_t> decode_policy(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::uint64_t version = r.get_u64();
  auto params = r.get_f32_vector();
  return {std::move(params), version};
}

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& ckpt) {
  ByteWriter w;
  w.put_u64(ckpt.version);
  w.put_u64(ckpt.applied_gradients);
  w.put_f32_vector(ckpt.params);
  // Nested blob: length-prefixed raw bytes of the optimizer's own stream.
  w.put_u64(ckpt.optimizer_state.size());
  for (std::uint8_t b : ckpt.optimizer_state) w.put_u8(b);
  return w.take();
}

Checkpoint decode_checkpoint(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  Checkpoint ckpt;
  ckpt.version = r.get_u64();
  ckpt.applied_gradients = r.get_u64();
  ckpt.params = r.get_f32_vector();
  const std::uint64_t n = r.get_u64();
  ckpt.optimizer_state.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    ckpt.optimizer_state.push_back(r.get_u8());
  return ckpt;
}

}  // namespace stellaris::core
