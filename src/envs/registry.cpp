#include "envs/env.hpp"

#include "envs/arcade.hpp"
#include "envs/locomotion.hpp"
#include "util/error.hpp"

namespace stellaris::envs {

StepResult Env::step(std::span<const float>) {
  throw Error(spec().name + " is not a continuous-action environment");
}

StepResult Env::step_discrete(std::size_t) {
  throw Error(spec().name + " is not a discrete-action environment");
}

std::unique_ptr<Env> make_env(const std::string& name) {
  if (name == "Hopper")
    return std::make_unique<LocomotionEnv>(LocomotionParams::hopper());
  if (name == "Walker2d")
    return std::make_unique<LocomotionEnv>(LocomotionParams::walker2d());
  if (name == "Humanoid")
    return std::make_unique<LocomotionEnv>(LocomotionParams::humanoid());
  if (name == "SpaceInvaders") return std::make_unique<SpaceInvadersEnv>();
  if (name == "Qbert") return std::make_unique<QbertEnv>();
  if (name == "Gravitar") return std::make_unique<GravitarEnv>();
  throw ConfigError("unknown environment: " + name);
}

EnvSpec env_spec(const std::string& name) { return make_env(name)->spec(); }

const std::vector<std::string>& benchmark_env_names() {
  static const std::vector<std::string> names = {
      "Hopper", "Humanoid", "Walker2d",
      "SpaceInvaders", "Qbert", "Gravitar"};
  return names;
}

}  // namespace stellaris::envs
