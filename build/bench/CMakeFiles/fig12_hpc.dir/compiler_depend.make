# Empty compiler generated dependencies file for fig12_hpc.
# This may be replaced when dependencies are built.
