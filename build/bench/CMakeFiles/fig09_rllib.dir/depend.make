# Empty dependencies file for fig09_rllib.
# This may be replaced when dependencies are built.
