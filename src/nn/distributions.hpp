// Action distributions for the policy heads.
//
// Two families, matching the paper's benchmark split:
//  - diagonal Gaussian for MuJoCo-style continuous control (network outputs
//    the mean; a learned state-independent log-std vector provides scale);
//  - categorical over logits for Atari-style discrete control.
//
// Each family provides: sampling, per-sample log-probabilities, entropy, KL
// divergence (for the KL penalty/monitoring in Table III), and the backward
// helpers needed to push PPO/IMPACT surrogate gradients into the network.
// All functions are batch-oriented: rows are samples.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace stellaris {

class Rng;

namespace nn {

// ---------------------------------------------------------------------------
// Diagonal Gaussian
// ---------------------------------------------------------------------------

/// Sample a ~ N(mean_i, exp(log_std)²) per row; returns (batch, act_dim).
Tensor gaussian_sample(const Tensor& mean, const Tensor& log_std, Rng& rng);

/// Allocation-free form: `out` is reshaped to (batch, act_dim) reusing its
/// capacity. RNG draw order is identical to gaussian_sample (row-major).
void gaussian_sample_into(Tensor& out, const Tensor& mean,
                          const Tensor& log_std, Rng& rng);

/// Per-row log π(a|s): returns (batch).
Tensor gaussian_log_prob(const Tensor& mean, const Tensor& log_std,
                         const Tensor& actions);

/// Allocation-free form: `out` is reshaped to (batch).
void gaussian_log_prob_into(Tensor& out, const Tensor& mean,
                            const Tensor& log_std, const Tensor& actions);

/// Gradient of Σ_i coeff_i · log π(a_i | s_i) with respect to mean and
/// log_std. `dmean` is (batch, act_dim); `dlog_std` is (act_dim), summed
/// over the batch (the log-std is a shared parameter).
struct GaussianLogProbGrad {
  Tensor dmean;
  Tensor dlog_std;
};
GaussianLogProbGrad gaussian_log_prob_backward(const Tensor& mean,
                                               const Tensor& log_std,
                                               const Tensor& actions,
                                               const Tensor& coeff);

/// Differential entropy per sample (same for every row given shared std).
double gaussian_entropy(const Tensor& log_std);

/// KL(p ‖ q) per row between two diagonal Gaussians with shared log-stds.
Tensor gaussian_kl(const Tensor& mean_p, const Tensor& log_std_p,
                   const Tensor& mean_q, const Tensor& log_std_q);

// ---------------------------------------------------------------------------
// Categorical
// ---------------------------------------------------------------------------

/// Sample one action index per row from softmax(logits).
std::vector<std::size_t> categorical_sample(const Tensor& logits, Rng& rng);

/// Allocation-free form: `actions` is resized to (batch); `probs_scratch`
/// holds the softmax and is reshaped reusing its capacity. Draw order is
/// identical to categorical_sample.
void categorical_sample_into(std::vector<std::size_t>& actions,
                             Tensor& probs_scratch, const Tensor& logits,
                             Rng& rng);

/// Per-row log π(a|s) for integer actions.
Tensor categorical_log_prob(const Tensor& logits,
                            const std::vector<std::size_t>& actions);

/// Allocation-free form: `out` is reshaped to (batch); `lsm_scratch` holds
/// the log-softmax and is reshaped reusing its capacity.
void categorical_log_prob_into(Tensor& out, Tensor& lsm_scratch,
                               const Tensor& logits,
                               const std::vector<std::size_t>& actions);

/// Gradient of Σ_i coeff_i · log π(a_i|s_i) w.r.t. logits: (batch, n).
Tensor categorical_log_prob_backward(const Tensor& logits,
                                     const std::vector<std::size_t>& actions,
                                     const Tensor& coeff);

/// Per-row entropy of softmax(logits).
Tensor categorical_entropy(const Tensor& logits);

/// Gradient of Σ_i coeff_i · H_i with respect to logits.
Tensor categorical_entropy_backward(const Tensor& logits, const Tensor& coeff);

/// KL(p ‖ q) per row between two categorical logit sets.
Tensor categorical_kl(const Tensor& logits_p, const Tensor& logits_q);

}  // namespace nn
}  // namespace stellaris
