// Deterministic discrete-event simulation engine.
//
// The benchmark harness replays the paper's cluster (GPUs, actors,
// serverless invocations, cache round-trips) in *virtual time*: every
// latency is an event scheduled on this engine, so an entire training run
// is exactly reproducible regardless of host core count. Events at equal
// timestamps execute in schedule order (a monotone sequence number breaks
// ties), which pins the interleaving of concurrent learner completions —
// exactly the source of staleness the paper studies.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace stellaris::sim {

/// Virtual time in seconds.
using SimTime = double;

class Engine {
 public:
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (>= now).
  void schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` `delay` seconds from now.
  void schedule_after(SimTime delay, std::function<void()> fn);

  /// Execute the single earliest event; returns false if none remain.
  bool step();

  /// Run until the event queue is empty.
  void run();

  /// Run until the queue is empty or virtual time would exceed `deadline`.
  void run_until(SimTime deadline);

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace stellaris::sim
