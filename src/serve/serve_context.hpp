// Per-execution scratch for serving bodies (sim/driver.hpp, DESIGN.md §15).
//
// A batched forward needs a model whose weights are the batch's policy
// version; under the concurrent driver several batches (possibly different
// versions of the SAME tenant) run at once, so models cannot be shared. The
// pool leases one scratch ActorCritic per body execution, exactly the
// core::WorkerContextPool discipline: lease at body start on whichever
// thread runs the body, construct outside the lock, fully overwrite
// (set_flat_params) before reading — which context a body draws never
// affects results. One pool per tenant, because the model geometry is the
// tenant's (obs_dim, act_dim, hidden).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/actor_critic.hpp"
#include "serve/serve_config.hpp"
#include "util/annotated_mutex.hpp"

namespace stellaris::serve {

struct ServeContext {
  ServeContext(const TenantConfig& tenant, std::uint64_t seed)
      : model(nn::ObsSpec::vector(tenant.obs_dim),
              tenant.discrete ? nn::ActionKind::kDiscrete
                              : nn::ActionKind::kContinuous,
              tenant.act_dim, make_net(tenant), seed) {}

  static nn::NetworkSpec make_net(const TenantConfig& tenant) {
    nn::NetworkSpec net;
    net.hidden = {tenant.hidden, tenant.hidden};
    return net;
  }

  nn::ActorCritic model;  ///< scratch; set_flat_params before every forward
};

class ServeContextPool {
 public:
  ServeContextPool(TenantConfig tenant, std::uint64_t seed)
      : tenant_(std::move(tenant)), seed_(seed) {}

  /// RAII lease: returns the context to the free list on destruction.
  class Lease {
   public:
    Lease(ServeContextPool* pool, std::unique_ptr<ServeContext> ctx)
        : pool_(pool), ctx_(std::move(ctx)) {}
    ~Lease() {
      if (ctx_) pool_->give_back(std::move(ctx_));
    }
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ServeContext* operator->() { return ctx_.get(); }
    ServeContext& operator*() { return *ctx_; }

   private:
    ServeContextPool* pool_;
    std::unique_ptr<ServeContext> ctx_;
  };

  /// Thread-safe; called at body start on whichever thread runs the body.
  Lease lease() {
    {
      MutexLock lock(mu_);
      if (!free_.empty()) {
        auto ctx = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(ctx));
      }
    }
    // Construct outside the lock (model construction runs init kernels).
    return Lease(this, std::make_unique<ServeContext>(tenant_, seed_));
  }

 private:
  void give_back(std::unique_ptr<ServeContext> ctx) {
    MutexLock lock(mu_);
    free_.push_back(std::move(ctx));
  }

  const TenantConfig tenant_;
  const std::uint64_t seed_;
  Mutex mu_{"serve/contexts", lock_rank::kServeContexts};
  std::vector<std::unique_ptr<ServeContext>> free_ GUARDED_BY(mu_);
};

}  // namespace stellaris::serve
