// Tensor kernels: matrix products, activations, softmax family, and the
// im2col lowering used by the convolution layer.
//
// All kernels are plain loops written for the autovectorizer (contiguous
// inner dimensions, no aliasing through spans); correctness is pinned by
// unit tests against hand-computed values and finite-difference checks in
// the nn test suite.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace stellaris::ops {

/// C = A (m×k) * B (k×n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ (k×m becomes m×k) * B — used in backward passes without
/// materializing transposes.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A * Bᵀ.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// y = x (m×n) with row-broadcast bias (n) added.
void add_bias_rows(Tensor& x, const Tensor& bias);

/// Column-sum of a 2-D tensor -> 1-D (n); the bias gradient.
Tensor sum_rows(const Tensor& x);

// -- activations (out-of-place forward, gradient helpers) -------------------
Tensor tanh_forward(const Tensor& x);
/// dx = dy * (1 - y²) where y = tanh(x) from the forward pass.
Tensor tanh_backward(const Tensor& y, const Tensor& dy);

Tensor relu_forward(const Tensor& x);
/// dx = dy ⊙ 1[x > 0].
Tensor relu_backward(const Tensor& x, const Tensor& dy);

// -- softmax family (row-wise over 2-D tensors) ------------------------------
/// Row-wise softmax with max-subtraction for stability.
Tensor softmax_rows(const Tensor& logits);
/// Row-wise log-softmax.
Tensor log_softmax_rows(const Tensor& logits);

// -- convolution lowering -----------------------------------------------------
/// Parameters of a 2-D convolution (square kernel/stride, zero padding).
struct Conv2dSpec {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t padding = 0;

  std::size_t out_h() const { return (in_h + 2 * padding - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * padding - kernel) / stride + 1; }
};

/// Lower an input batch (N, C·H·W flattened rows) into the im2col matrix
/// with shape (N·out_h·out_w, C·k·k): each row is one receptive field.
Tensor im2col(const Tensor& input, const Conv2dSpec& spec);

/// Inverse scatter of im2col — accumulates column gradients back into the
/// input-gradient layout (N, C·H·W).
Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, std::size_t batch);

}  // namespace stellaris::ops
