// Fig. 13 — sensitivity analysis on PPO/Hopper of Stellaris' three knobs:
//  (a) staleness-threshold decay d ∈ {0.92 .. 1.00}
//  (b) learning-rate smoothness v ∈ {1 .. 4}
//  (c) importance-sampling truncation threshold ρ ∈ {0.6 .. 1.2}
// plus a repo extension:
//  (d) envs per actor K ∈ {1, 2, 4, 8} — vectorized-actor batch width
//      (DESIGN.md §17). K multiplies timesteps per invocation at fixed
//      rounds, trading invocation count against per-batch staleness.
#include "common.hpp"

#include <iostream>

using namespace stellaris;

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  const std::string env = "Hopper";
  const std::size_t rounds = bench::default_rounds(env);
  const std::size_t seeds = bench::default_seeds(env);

  {
    Table t({"decay_d", "final_reward", "cost_usd", "time_s"});
    for (double d : {0.92, 0.94, 0.96, 0.98, 1.0}) {
      auto cfg = bench::base_config(env, rounds, 1);
      cfg.decay_d = d;
      const auto s = bench::summarize(bench::run_seeds(cfg, seeds));
      t.row().add(d, 2).add(s.final_reward, 1).add(s.total_cost, 4)
          .add(s.time_s, 2);
    }
    t.emit("Fig. 13(a) — decay factor d (paper optimum: 0.96)",
           "fig13a_decay.csv");
  }
  {
    Table t({"smooth_v", "final_reward", "cost_usd"});
    for (double v : {1.0, 2.0, 3.0, 4.0}) {
      auto cfg = bench::base_config(env, rounds, 1);
      cfg.smooth_v = v;
      const auto s = bench::summarize(bench::run_seeds(cfg, seeds));
      t.row().add(v, 0).add(s.final_reward, 1).add(s.total_cost, 4);
    }
    t.emit("Fig. 13(b) — LR smoothness v (paper optimum: 3)",
           "fig13b_smoothness.csv");
  }
  {
    Table t({"rho", "final_reward", "cost_usd"});
    for (double rho : {0.6, 0.8, 1.0, 1.2}) {
      auto cfg = bench::base_config(env, rounds, 1);
      cfg.ratio_rho = rho;
      const auto s = bench::summarize(bench::run_seeds(cfg, seeds));
      t.row().add(rho, 1).add(s.final_reward, 1).add(s.total_cost, 4);
    }
    t.emit("Fig. 13(c) — truncation threshold rho (paper optimum: 1.0)",
           "fig13c_rho.csv");
  }
  {
    Table t({"envs_per_actor", "final_reward", "cost_usd", "time_s"});
    for (std::size_t k : {1, 2, 4, 8}) {
      auto cfg = bench::base_config(env, rounds, 1);
      cfg.envs_per_actor = k;
      const auto s = bench::summarize(bench::run_seeds(cfg, seeds));
      t.row().add(static_cast<double>(k), 0).add(s.final_reward, 1)
          .add(s.total_cost, 4).add(s.time_s, 2);
    }
    t.emit("Fig. 13(d) — envs per actor K (vectorized actors, DESIGN.md §17)",
           "fig13d_envs_per_actor.csv");
  }
  std::cout << "\nExpected shape: reward peaks near d=0.96, v=3, rho=1.0 —"
               " conservative settings underfit, loose settings destabilize."
               "\n";
  return 0;
}
