// Vectorized actor: drives K environment copies per invocation with ONE
// batched policy forward (K, obs_dim)×W per step instead of K single-row
// matvecs — the shape the blocked GEMM kernels are tiled for. See
// DESIGN.md §17 for the full contract.
//
// Semantics are the scalar Actor's, replicated per env slot:
//  - lazy reset: an env that finishes a step stays terminal until the next
//    step's ensure-episode pass draws its reset seed (in env index order)
//    from the SAME stream as action noise, so at K=1 the draw sequence is
//    bit-identical to rl::Actor and the emitted SampleBatch byte-identical;
//  - env-major batch layout: env e owns rows [e·H, (e+1)·H) of the
//    (K·H)-row batch, one SampleBatch::Segment per env, so GAE / V-trace
//    never bootstrap across env seams;
//  - per-env episode bookkeeping (episode_returns, bootstrap values) exactly
//    as the scalar actor records them.
//
// Buffer ownership: cross-invocation state (current observations, episode
// flags/returns, member RNG) lives in the VecActor, serialized by the
// per-actor job chain. Per-invocation scratch (sampled actions, log-probs,
// softmax workspaces) lives in a VecActorScratch leased from the worker
// context pool, scratch-by-construction like the rest of WorkerContext.
#pragma once

#include <cstdint>
#include <memory>

#include "envs/vec_env.hpp"
#include "nn/actor_critic.hpp"
#include "rl/sample_batch.hpp"
#include "util/rng.hpp"

namespace stellaris::rl {

/// Per-invocation scratch for VecActor::sample — embedded in
/// core::WorkerContext so concurrent driver bodies each get their own set.
/// Every tensor is fully overwritten before it is read.
struct VecActorScratch {
  Tensor actions;                         ///< (K, act_dim) sampled actions
  Tensor logp;                            ///< (K) behaviour log-probs
  Tensor probs;                           ///< categorical softmax workspace
  Tensor lsm;                             ///< categorical log-softmax workspace
  std::vector<std::size_t> disc_actions;  ///< (K) discrete actions
};

class VecActor {
 public:
  VecActor(std::unique_ptr<envs::VecEnv> env, std::uint64_t seed);

  /// Roll every env `horizon` steps under `policy` with one batched forward
  /// per step, continuing across episode boundaries. Emits a (K·horizon)-row
  /// env-major SampleBatch with one segment per env (K=1: the scalar
  /// actor's implicit-segment layout, byte-identical to rl::Actor). All
  /// draws (reset seeds, action noise) come from `rng` — the caller's
  /// per-invocation keyed stream.
  SampleBatch sample(nn::ActorCritic& policy, VecActorScratch& scratch,
                     std::size_t horizon, std::uint64_t policy_version,
                     Rng& rng);

  /// As above, drawing from the actor's own stream (seeded at
  /// construction) — the sync baseline's round-robin form.
  SampleBatch sample(nn::ActorCritic& policy, VecActorScratch& scratch,
                     std::size_t horizon, std::uint64_t policy_version);

  std::size_t num_envs() const { return env_->size(); }
  const envs::EnvSpec& env_spec() const { return env_->spec(); }
  /// Total environment steps taken across all env copies.
  std::uint64_t total_env_steps() const { return env_->total_steps(); }

 private:
  void ensure_episodes(Rng& rng);

  std::unique_ptr<envs::VecEnv> env_;
  Rng rng_;
  // Cross-invocation per-env state (the vector form of Actor's
  // current_obs_ / episode_active_ / episode_return_).
  Tensor current_obs_;                 ///< (K, obs_dim)
  std::vector<std::uint8_t> active_;   ///< per-env episode-live flag
  std::vector<double> episode_return_;
  std::uint64_t episode_counter_ = 0;
};

}  // namespace stellaris::rl
