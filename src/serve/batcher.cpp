#include "serve/batcher.hpp"

#include "util/error.hpp"

namespace stellaris::serve {

bool Batcher::enqueue(ServeRequest req) {
  auto& lane = lanes_[req.version];
  const bool was_empty = lane.empty();
  lane.push_back(std::move(req));
  ++queued_;
  return was_empty;
}

bool Batcher::lane_ready(const std::deque<ServeRequest>& lane,
                         double now) const {
  if (lane.empty()) return false;
  if (lane.size() >= cfg_.max_batch) return true;
  // The cutoff timer fires exactly at head + max_wait, so >= is the timer's
  // own event seeing its lane as expired (no epsilon games).
  return now - lane.front().arrival_s >= cfg_.max_wait_s;
}

std::optional<std::uint64_t> Batcher::ready_version(double now) const {
  std::optional<std::uint64_t> best;
  double best_arrival = 0.0;
  for (const auto& [version, lane] : lanes_) {
    if (!lane_ready(lane, now)) continue;
    const double head = lane.front().arrival_s;
    // Strict < keeps the tie-break at the lower version (map order).
    if (!best || head < best_arrival) {
      best = version;
      best_arrival = head;
    }
  }
  return best;
}

std::optional<double> Batcher::ready_head_arrival(double now) const {
  const auto version = ready_version(now);
  if (!version) return std::nullopt;
  return lanes_.at(*version).front().arrival_s;
}

std::vector<ServeRequest> Batcher::take(std::uint64_t version) {
  auto it = lanes_.find(version);
  STELLARIS_CHECK_MSG(it != lanes_.end() && !it->second.empty(),
                      "take() from an empty lane");
  auto& lane = it->second;
  const std::size_t n = std::min(cfg_.max_batch, lane.size());
  std::vector<ServeRequest> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(lane.front()));
    lane.pop_front();
  }
  queued_ -= n;
  if (lane.empty()) lanes_.erase(it);
  return batch;
}

std::optional<double> Batcher::head_arrival(std::uint64_t version) const {
  const auto it = lanes_.find(version);
  if (it == lanes_.end() || it->second.empty()) return std::nullopt;
  return it->second.front().arrival_s;
}

std::vector<std::uint64_t> Batcher::pending_versions() const {
  std::vector<std::uint64_t> out;
  out.reserve(lanes_.size());
  for (const auto& [version, lane] : lanes_)
    if (!lane.empty()) out.push_back(version);
  return out;
}

}  // namespace stellaris::serve
