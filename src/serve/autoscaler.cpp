#include "serve/autoscaler.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace stellaris::serve {

Autoscaler::Autoscaler(AutoscaleConfig cfg)
    : cfg_(cfg), active_(cfg.min_workers), peak_(cfg.min_workers) {
  STELLARIS_CHECK_MSG(
      cfg_.min_workers >= 1 && cfg_.min_workers <= cfg_.max_workers,
      "autoscale bounds must satisfy 1 <= min_workers <= max_workers");
  STELLARIS_CHECK_MSG(cfg_.queue_per_worker > 0.0,
                      "queue_per_worker must be positive");
}

Autoscaler::Decision Autoscaler::evaluate(std::size_t queued,
                                          std::size_t busy) {
  const double load = static_cast<double>(queued + busy);
  const auto desired = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::ceil(load / cfg_.queue_per_worker)),
      cfg_.min_workers, cfg_.max_workers);

  Decision d{active_, active_};
  if (desired > active_) {
    active_ = desired;
    low_evals_ = 0;
    ++ups_;
  } else if (desired < active_) {
    if (++low_evals_ >= cfg_.scale_down_idle_evals) {
      --active_;
      low_evals_ = 0;
      ++downs_;
    }
  } else {
    low_evals_ = 0;
  }
  d.to = active_;
  peak_ = std::max(peak_, active_);
  return d;
}

}  // namespace stellaris::serve
