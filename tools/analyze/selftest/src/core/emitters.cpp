// ledger-schema emit-site cases, both builder forms (chained temporary
// and named variable with conditional fields).
#include "util/helper.hpp"

namespace stellaris {

void emit_all(double t, bool cond, Sink* led) {
  // Passing: parsed branch, field set matches.
  obs::LedgerEvent("alpha", t).field("x", 1.0).finish();

  // Passing: named-variable form; "ys" is conditional, which is fine
  // because the parser guards it with has().
  obs::LedgerEvent ev("beta", t);
  ev.field("req", 2);
  if (cond) ev.raw("ys", "[1,2]");
  led->append(std::move(ev).finish());

  // Passing: unparsed but declared `ledger-schema:ignore` in the parser.
  obs::LedgerEvent("meta", t).field("note", "config echo").finish();

  // expect: ledger-schema
  obs::LedgerEvent("orphan", t).field("z", 1).finish();

  // expect: ledger-schema
  obs::LedgerEvent("beta", t).raw("ys", "[]").finish();  // omits req
}

}  // namespace stellaris
