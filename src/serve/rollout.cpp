#include "serve/rollout.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/percentile.hpp"

namespace stellaris::serve {

void RolloutController::start(std::uint64_t version, double fraction) {
  STELLARIS_CHECK_MSG(!active_, "canary already active for this tenant");
  STELLARIS_CHECK_MSG(fraction > 0.0 && fraction < 1.0,
                      "canary fraction must be in (0, 1)");
  STELLARIS_CHECK_MSG(version != stable_,
                      "canary version must differ from the stable version");
  canary_ = version;
  fraction_ = fraction;
  active_ = true;
  healthy_windows_ = 0;
  reset_windows();
}

std::uint64_t RolloutController::assign(Rng& rng) {
  if (!active_) return stable_;
  return rng.bernoulli(fraction_) ? canary_ : stable_;
}

void RolloutController::observe(std::uint64_t version, double latency_s,
                                double value) {
  if (!active_) return;
  Window* win = nullptr;
  if (version == canary_) {
    win = &canary_win_;
  } else if (version == stable_) {
    win = &stable_win_;
  } else {
    return;  // a just-retired version settling late; not part of this window
  }
  win->latencies.push_back(latency_s);
  win->value_sum += value;
  ++win->n;
}

RolloutController::Outcome RolloutController::evaluate() {
  Outcome out;
  if (!active_) return out;
  if (canary_win_.n < cfg_.min_window_requests) {
    // Too little evidence to judge; let the window keep accumulating.
    out.action = Action::kContinue;
    out.canary_n = canary_win_.n;
    out.reason = "window_small";
    return out;
  }

  std::sort(canary_win_.latencies.begin(), canary_win_.latencies.end());
  std::sort(stable_win_.latencies.begin(), stable_win_.latencies.end());
  out.canary_p99 = nearest_rank_sorted(canary_win_.latencies, 0.99);
  out.stable_p99 = nearest_rank_sorted(stable_win_.latencies, 0.99);
  out.canary_n = canary_win_.n;

  const double canary_val =
      canary_win_.value_sum / static_cast<double>(canary_win_.n);
  const double stable_val =
      stable_win_.n > 0
          ? stable_win_.value_sum / static_cast<double>(stable_win_.n)
          : canary_val;
  // Relative drift with a unit floor so near-zero stable values do not
  // manufacture infinite drift out of noise.
  out.drift =
      std::abs(canary_val - stable_val) / std::max(std::abs(stable_val), 1.0);

  if (out.canary_p99 > cfg_.slo_p99_s) {
    out.action = Action::kRollback;
    out.reason = "slo_breach";
    active_ = false;
    canary_ = 0;
    ++rollbacks_;
  } else if (out.drift > cfg_.max_value_drift) {
    out.action = Action::kRollback;
    out.reason = "value_drift";
    active_ = false;
    canary_ = 0;
    ++rollbacks_;
  } else if (++healthy_windows_ >= cfg_.healthy_windows_to_promote) {
    out.action = Action::kPromote;
    out.reason = "healthy";
    stable_ = canary_;
    active_ = false;
    canary_ = 0;
    ++promotions_;
  } else {
    out.action = Action::kContinue;
    out.reason = "healthy";
  }
  reset_windows();
  return out;
}

void RolloutController::reset_windows() {
  stable_win_ = Window{};
  canary_win_ = Window{};
}

}  // namespace stellaris::serve
