// Passing lock-rank cases: named + ranked constructions whose names all
// appear in the corpus DESIGN.md table, and nestings that acquire
// strictly increasing ranks (or release before going back down).
#include "util/annotated_mutex.hpp"

namespace stellaris {

Mutex alpha_mu{"util/alpha", lock_rank::kAlpha};
Mutex beta_mu{"core/beta", lock_rank::kBeta};
SharedMutex gamma_mu{"obs/gamma", lock_rank::kGamma};
Mutex dupe_mu{"core/dupe", lock_rank::kDupe};

void nested_in_order() {
  MutexLock a(alpha_mu);
  MutexLock b(beta_mu);  // 100 -> 200: strictly increasing
}

void release_then_lower() {
  MutexLock b(beta_mu);
  b.unlock();
  MutexLock a(alpha_mu);  // beta was released first: legal
}

void scoped_then_sibling() {
  {
    MutexLock b(beta_mu);
  }
  MutexLock a(alpha_mu);  // beta's scope ended: legal
}

void mixed_guard_kinds() {
  MutexLock a(alpha_mu);
  WriterLock g(gamma_mu);  // 100 -> 350 through a shared mutex
}

}  // namespace stellaris
