// Deterministic, splittable random number generation.
//
// Every stochastic component in Stellaris (environments, policy sampling,
// simulated latency jitter) takes an explicit seed so that a full training
// run is a pure function of (config, seed). We use xoshiro256** seeded via
// SplitMix64, the standard pairing recommended by the xoshiro authors, which
// is far faster than std::mt19937_64 and has no seeding pathologies.
#pragma once

#include <cstdint>
#include <vector>

namespace stellaris {

/// SplitMix64: used to expand a single 64-bit seed into generator state and
/// to derive independent child seeds ("splitting").
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator.
///
/// Satisfies UniformRandomBitGenerator so it can be handed to <random>
/// distributions, though the member helpers below avoid libstdc++'s
/// comparatively slow distribution objects.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Derive an independent child generator (for per-actor / per-learner
  /// streams). Children with distinct `stream` ids are decorrelated.
  Rng split(std::uint64_t stream) const;

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box–Muller (cached spare).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Sample an index from an (unnormalized) discrete distribution given as
  /// probabilities; caller guarantees probs sum to ~1.
  std::size_t categorical(const std::vector<double>& probs);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// In-place Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;

  std::uint64_t seed_origin_;
};

}  // namespace stellaris
