// Vectorized environment driver: N environment copies stepped as a batch,
// optionally across real threads.
//
// The paper's actors each own one environment; this wrapper is the
// substrate for *serverful* multi-core actors (one process driving many
// envs, as RLlib's rollout workers do) and for users who want batched
// inference. Stepping is deterministic in serial mode; the threaded mode
// partitions envs statically across the pool so results are identical to
// serial for the same seeds.
#pragma once

#include <memory>
#include <vector>

#include "envs/env.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace stellaris::envs {

class VecEnv {
 public:
  /// Construct `n` copies of `name`. `threads` > 0 enables a thread pool
  /// (each env is still stepped by exactly one thread per call).
  VecEnv(const std::string& name, std::size_t n, std::uint64_t seed,
         std::size_t threads = 0);

  std::size_t size() const { return envs_.size(); }
  const EnvSpec& spec() const { return spec_; }

  /// Reset every environment; returns stacked observations (n, obs_dim).
  Tensor reset_all();

  /// Step every environment with the given batch of actions. Continuous:
  /// `actions` is (n, act_dim). Environments that finish are auto-reset;
  /// their `done` flag is reported and the returned observation is the
  /// first of the new episode (the standard Gym vector-env contract).
  struct StepBatch {
    Tensor obs;                    ///< (n, obs_dim)
    std::vector<double> rewards;   ///< (n)
    std::vector<bool> dones;       ///< (n)
    std::vector<double> episode_returns;  ///< completed this step
  };
  StepBatch step(const Tensor& actions);
  StepBatch step_discrete(const std::vector<std::size_t>& actions);

  /// Total environment steps taken across all copies.
  std::uint64_t total_steps() const { return total_steps_; }

 private:
  template <typename StepFn>
  StepBatch step_impl(const StepFn& fn);

  EnvSpec spec_;
  std::vector<std::unique_ptr<Env>> envs_;
  std::vector<std::uint64_t> env_seeds_;
  std::vector<double> running_returns_;
  std::unique_ptr<ThreadPool> pool_;
  Rng rng_;
  std::uint64_t total_steps_ = 0;
};

}  // namespace stellaris::envs
