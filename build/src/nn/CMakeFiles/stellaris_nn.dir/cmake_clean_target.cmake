file(REMOVE_RECURSE
  "libstellaris_nn.a"
)
