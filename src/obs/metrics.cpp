#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>

#include "obs/trace.hpp"  // TraceArg::render_double for JSON numbers
#include "util/error.hpp"

namespace stellaris::obs {

namespace {

void atomic_add(std::atomic<double>& a, double dx) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + dx, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double x) {
  double cur = a.load(std::memory_order_relaxed);
  while (x < cur &&
         !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double x) {
  double cur = a.load(std::memory_order_relaxed);
  while (x > cur &&
         !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

std::string num(double v) { return TraceArg::render_double(v); }

}  // namespace

void Gauge::add(double dx) { atomic_add(v_, dx); }

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins) {
  STELLARIS_CHECK_MSG(bins > 0 && hi > lo,
                      "histogram needs bins > 0 and hi > lo");
}

void FixedHistogram::observe(double x) {
  const auto last = static_cast<double>(counts_.size() - 1);
  const double idx = std::clamp((x - lo_) / width_, 0.0, last);
  counts_[static_cast<std::size_t>(idx)].fetch_add(
      1, std::memory_order_relaxed);
  n_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  atomic_min(min_, x);
  atomic_max(max_, x);
}

double FixedHistogram::mean() const {
  const std::uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double FixedHistogram::min() const {
  const double m = min_.load(std::memory_order_relaxed);
  return std::isfinite(m) ? m : 0.0;
}

double FixedHistogram::max() const {
  const double m = max_.load(std::memory_order_relaxed);
  return std::isfinite(m) ? m : 0.0;
}

double FixedHistogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t c = bin_count(i);
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      const double frac =
          c ? (target - static_cast<double>(cum)) / static_cast<double>(c)
            : 0.0;
      return std::clamp(bin_lo(i) + frac * width_, min(), max());
    }
    cum += c;
  }
  return max();
}

void FixedHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  n_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  WriterLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  WriterLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                           double hi, std::size_t bins) {
  WriterLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<FixedHistogram>(lo, hi, bins);
  return *slot;
}

void MetricsRegistry::reset() {
  WriterLock lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  ReaderLock lock(mu_);
  os << "{\n\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n\"" << name << "\":" << c->value();
    first = false;
  }
  os << "\n},\n\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n\"" << name << "\":" << num(g->value());
    first = false;
  }
  os << "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n\"" << name << "\":{\"lo\":" << num(h->lo())
       << ",\"hi\":" << num(h->hi()) << ",\"count\":" << h->count()
       << ",\"sum\":" << num(h->sum()) << ",\"min\":" << num(h->min())
       << ",\"max\":" << num(h->max()) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h->bins(); ++i)
      os << (i ? "," : "") << h->bin_count(i);
    os << "]}";
    first = false;
  }
  os << "\n}\n}\n";
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  ReaderLock lock(mu_);
  os << "kind,name,field,value\n";
  for (const auto& [name, c] : counters_)
    os << "counter," << name << ",value," << c->value() << "\n";
  for (const auto& [name, g] : gauges_)
    os << "gauge," << name << ",value," << num(g->value()) << "\n";
  for (const auto& [name, h] : histograms_) {
    os << "histogram," << name << ",count," << h->count() << "\n";
    os << "histogram," << name << ",sum," << num(h->sum()) << "\n";
    os << "histogram," << name << ",mean," << num(h->mean()) << "\n";
    os << "histogram," << name << ",min," << num(h->min()) << "\n";
    os << "histogram," << name << ",max," << num(h->max()) << "\n";
    os << "histogram," << name << ",p50," << num(h->quantile(0.5)) << "\n";
    os << "histogram," << name << ",p95," << num(h->quantile(0.95)) << "\n";
    os << "histogram," << name << ",p99," << num(h->quantile(0.99)) << "\n";
  }
}

bool MetricsRegistry::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv)
    write_csv(out);
  else
    write_json(out);
  return static_cast<bool>(out);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace stellaris::obs
