// Shared helpers for the figure benches: reduced-scale default configs,
// multi-seed curve averaging with EMA smoothing (the paper's curves are
// smoothed and averaged over repeated runs), and serverful re-billing for
// motivation-style comparisons.
//
// Scale notes (see EXPERIMENTS.md): the paper trains 50 rounds × 10 seeds
// on 16 V100s; these benches run the same protocol with reduced dimensions
// so the full suite regenerates on a laptop core in minutes.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/sync_trainer.hpp"
#include "core/stellaris_trainer.hpp"
#include "obs/obs.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace stellaris::bench {

/// Shared observability flag surface: every figure bench accepts
///   --trace-out=<file>        Chrome trace-event JSON (open in Perfetto)
///   --metrics-out=<file>      metrics snapshot (JSON, or CSV if *.csv)
///   --ledger-out=<file>       causal run ledger (JSONL; see DESIGN.md §13)
///   --timeseries-out=<file>   windowed time series (JSON, or CSV if *.csv)
///   --timeseries-window=<s>   sampling window width in virtual seconds
/// and captures the whole bench run in one ObsSession. Unknown arguments
/// are ignored so the flags compose with whatever else a bench parses.
/// With no flag given, recording stays disabled and the run's results
/// are bit-identical to an uninstrumented build.
inline std::unique_ptr<obs::ObsSession> obs_session_from_args(int argc,
                                                              char** argv) {
  obs::ObsOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0)
      opts.trace_path = arg.substr(12);
    else if (arg.rfind("--metrics-out=", 0) == 0)
      opts.metrics_path = arg.substr(14);
    else if (arg.rfind("--ledger-out=", 0) == 0)
      opts.ledger_path = arg.substr(13);
    else if (arg.rfind("--timeseries-out=", 0) == 0)
      opts.timeseries_path = arg.substr(17);
    else if (arg.rfind("--timeseries-window=", 0) == 0)
      opts.timeseries_window_s = std::stod(arg.substr(20));
  }
  return std::make_unique<obs::ObsSession>(std::move(opts));
}

/// Execution-driver flag surface (DESIGN.md §14), shared like the obs flags:
///   --driver=virtual|concurrent   execution driver (default: virtual)
///   --driver-threads=<n>          concurrent worker cap (0 = one per
///                                 hardware thread)
///   --envs-per-actor=<k>          environment copies stepped per actor
///                                 invocation (DESIGN.md §17; default 1)
/// Results are byte-identical across drivers by construction; the driver
/// flags only trade wall-clock for threads. --envs-per-actor changes the
/// sampled data (K times more timesteps per invocation), not the
/// execution semantics. Unknown arguments are ignored.
inline void apply_driver_args(core::TrainConfig& cfg, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--driver=", 0) == 0) {
      const auto kind = sim::parse_driver_kind(arg.substr(9));
      if (!kind) {
        std::fprintf(stderr, "unknown --driver=%s (virtual|concurrent)\n",
                     arg.substr(9).c_str());
        std::exit(2);
      }
      cfg.driver = *kind;
    } else if (arg.rfind("--driver-threads=", 0) == 0) {
      cfg.driver_threads = static_cast<std::size_t>(
          std::stoul(arg.substr(17)));
    } else if (arg.rfind("--envs-per-actor=", 0) == 0) {
      cfg.envs_per_actor = static_cast<std::size_t>(
          std::stoul(arg.substr(17)));
      if (cfg.envs_per_actor == 0) {
        std::fprintf(stderr, "--envs-per-actor must be >= 1\n");
        std::exit(2);
      }
    }
  }
}

/// Reduced-scale base config shared by the figure benches.
inline core::TrainConfig base_config(const std::string& env,
                                     std::size_t rounds, std::uint64_t seed) {
  core::TrainConfig cfg;
  cfg.env_name = env;
  cfg.rounds = rounds;
  cfg.seed = seed;
  cfg.cluster = serverless::ClusterSpec::regular_small();
  const bool atari = envs::env_spec(env).obs.image;
  cfg.num_actors = atari ? 4 : 8;
  cfg.horizon = atari ? 96 : 128;
  cfg.trajs_per_learner = atari ? 2 : 4;
  cfg.eval_episodes = 3;
  return cfg;
}

/// Rounds per env kind: arcade runs are CPU-heavier per step, so they get
/// fewer rounds at bench scale.
inline std::size_t default_rounds(const std::string& env) {
  return envs::env_spec(env).obs.image ? 16 : 40;
}

inline std::size_t default_seeds(const std::string& /*env*/) {
  return 2;
}

/// One point of an averaged curve.
struct CurvePoint {
  double x = 0.0;      ///< round index or virtual time
  double mean = 0.0;
  double stddev = 0.0;
};

/// Average the evaluated-reward curves of several same-config runs.
/// Each run's curve is EMA-smoothed first (α = smooth), then aligned by
/// round index and averaged across seeds; x is the mean virtual time when
/// `by_time` is set.
inline std::vector<CurvePoint> average_curves(
    const std::vector<core::TrainResult>& runs, bool by_time = false,
    double smooth = 0.6) {
  std::vector<CurvePoint> out;
  if (runs.empty()) return out;
  const std::size_t rounds = runs.front().rounds.size();
  std::vector<Ema> emas(runs.size(), Ema(smooth));
  for (std::size_t r = 0; r < rounds; ++r) {
    RunningStat reward, time;
    bool any = false;
    for (std::size_t s = 0; s < runs.size(); ++s) {
      if (r >= runs[s].rounds.size()) continue;
      const auto& rec = runs[s].rounds[r];
      if (!rec.evaluated) continue;
      emas[s].add(rec.reward);
      reward.add(emas[s].value());
      time.add(rec.time_s);
      any = true;
    }
    if (!any) continue;
    out.push_back({by_time ? time.mean() : static_cast<double>(r + 1),
                   reward.mean(), reward.stddev()});
  }
  return out;
}

/// Mean final / best reward, cost, and time across seeds.
struct Summary {
  double final_reward = 0.0;
  double best_reward = 0.0;
  double total_cost = 0.0;
  double learner_cost = 0.0;
  double actor_cost = 0.0;
  double time_s = 0.0;
};

inline Summary summarize(const std::vector<core::TrainResult>& runs) {
  Summary s;
  for (const auto& r : runs) {
    s.final_reward += r.final_reward;
    s.best_reward += r.best_reward;
    s.total_cost += r.total_cost_usd;
    s.learner_cost += r.learner_cost_usd;
    s.actor_cost += r.actor_cost_usd;
    s.time_s += r.total_time_s;
  }
  const double n = static_cast<double>(runs.size());
  s.final_reward /= n;
  s.best_reward /= n;
  s.total_cost /= n;
  s.learner_cost /= n;
  s.actor_cost /= n;
  s.time_s /= n;
  return s;
}

/// Re-bill an (async, serverless-executed) run as if the whole VM fleet had
/// been rented for its wall-clock — the "asynchronous learners WITHOUT
/// serverless" variant of Fig. 2.
inline void rebill_serverful(core::TrainResult& result,
                             const serverless::ClusterSpec& cluster) {
  double fleet_hourly = 0.0, gpu_hourly = 0.0;
  for (const auto& g : cluster.vms) {
    fleet_hourly += g.type.hourly_price_usd * static_cast<double>(g.count);
    if (g.type.gpus > 0)
      gpu_hourly += g.type.hourly_price_usd * static_cast<double>(g.count);
  }
  result.learner_cost_usd = gpu_hourly / 3600.0 * result.total_time_s;
  result.actor_cost_usd =
      (fleet_hourly - gpu_hourly) / 3600.0 * result.total_time_s;
  result.parameter_cost_usd = 0.0;
  result.total_cost_usd = result.learner_cost_usd + result.actor_cost_usd;
  double acc = 0.0;
  for (auto& r : result.rounds) {
    acc = fleet_hourly / 3600.0 * r.time_s;
    r.cost_so_far_usd = acc;
  }
}

/// Run N seeds of a Stellaris config.
inline std::vector<core::TrainResult> run_seeds(core::TrainConfig cfg,
                                                std::size_t seeds) {
  std::vector<core::TrainResult> out;
  for (std::size_t s = 0; s < seeds; ++s) {
    cfg.seed = 1000 + 37 * s;
    out.push_back(core::run_training(cfg));
  }
  return out;
}

/// Run N seeds of a Stellaris config with a virtual-time budget: the round
/// count is scaled so each run fills roughly `time_budget_s` of virtual
/// time — the paper's comparisons are at equal wall-clock, where the
/// asynchronous system fits several times more policy updates than the
/// synchronous baseline. A single pilot run estimates the per-round time;
/// the scale factor is capped to keep bench wall time bounded.
inline std::vector<core::TrainResult> run_seeds_time_matched(
    core::TrainConfig cfg, std::size_t seeds, double time_budget_s,
    double max_scale = 2.5) {
  cfg.seed = 1000;
  core::TrainResult pilot = core::run_training(cfg);
  const double per_round =
      pilot.total_time_s / static_cast<double>(cfg.rounds);
  double scale = per_round > 0.0
                     ? time_budget_s / (per_round *
                                        static_cast<double>(cfg.rounds))
                     : 1.0;
  scale = std::clamp(scale, 1.0, max_scale);
  cfg.rounds = static_cast<std::size_t>(
      static_cast<double>(cfg.rounds) * scale);
  return run_seeds(cfg, seeds);
}

/// Run N seeds of a sync-baseline config.
inline std::vector<core::TrainResult> run_sync_seeds(
    baselines::SyncConfig cfg, std::size_t seeds) {
  std::vector<core::TrainResult> out;
  for (std::size_t s = 0; s < seeds; ++s) {
    cfg.base.seed = 1000 + 37 * s;
    out.push_back(baselines::run_sync_training(cfg));
  }
  return out;
}

/// Emit a two-system reward-curve comparison as one table.
inline void emit_curve_comparison(const std::string& title,
                                  const std::string& name_a,
                                  const std::vector<core::TrainResult>& a,
                                  const std::string& name_b,
                                  const std::vector<core::TrainResult>& b,
                                  const std::string& csv_path) {
  const auto ca = average_curves(a);
  const auto cb = average_curves(b);
  const auto ta = average_curves(a, /*by_time=*/true);
  const auto tb = average_curves(b, /*by_time=*/true);
  Table t({"round", name_a + "_reward", name_a + "_sd", name_a + "_time_s",
           name_b + "_reward", name_b + "_sd", name_b + "_time_s"});
  const std::size_t n = std::min(ca.size(), cb.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Downsample long curves for console legibility; CSV keeps all rows.
    t.row()
        .add(ca[i].x, 0)
        .add(ca[i].mean, 1)
        .add(ca[i].stddev, 1)
        .add(ta[i].x, 2)
        .add(cb[i].mean, 1)
        .add(cb[i].stddev, 1)
        .add(tb[i].x, 2);
  }
  t.emit(title, csv_path);
}

}  // namespace stellaris::bench
