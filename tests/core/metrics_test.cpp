#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stellaris::core {
namespace {

TEST(LatencyBreakdown, ZeroDurationRunHasNoOverhead) {
  // A run where nothing took any time (e.g. a zero-round config) must not
  // divide by zero — the fraction is defined as 0, not NaN.
  LatencyBreakdown lb;
  EXPECT_DOUBLE_EQ(lb.total(), 0.0);
  EXPECT_DOUBLE_EQ(lb.overhead_fraction(), 0.0);
  EXPECT_FALSE(std::isnan(lb.overhead_fraction()));
}

TEST(LatencyBreakdown, PureComputeHasZeroOverhead) {
  LatencyBreakdown lb;
  lb.actor_sample_s = 3.0;
  lb.learner_compute_s = 7.0;
  EXPECT_DOUBLE_EQ(lb.overhead_fraction(), 0.0);
}

TEST(LatencyBreakdown, PureOverheadIsFractionOne) {
  LatencyBreakdown lb;
  lb.learner_start_s = 2.0;
  lb.broadcast_s = 1.0;
  EXPECT_DOUBLE_EQ(lb.overhead_fraction(), 1.0);
}

TEST(LatencyBreakdown, MixedFractionMatchesDefinition) {
  LatencyBreakdown lb;
  lb.actor_sample_s = 4.0;     // useful
  lb.learner_compute_s = 2.0;  // useful
  lb.data_load_s = 1.0;
  lb.learner_start_s = 1.0;
  lb.grad_submit_s = 0.5;
  lb.aggregate_s = 1.0;
  lb.broadcast_s = 0.5;
  EXPECT_DOUBLE_EQ(lb.total(), 10.0);
  EXPECT_DOUBLE_EQ(lb.overhead_fraction(), 0.4);
}

}  // namespace
}  // namespace stellaris::core
