// Passing layer-dag case: obs declares util as a dependency, so this
// include is a legal downward edge.
#pragma once

#include "util/helper.hpp"

namespace stellaris::obs {
inline int sample_count() { return helper_add(1, 2); }
}  // namespace stellaris::obs
