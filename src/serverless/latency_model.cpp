#include "serverless/latency_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace stellaris::serverless {

const char* data_tier_name(DataTier tier) {
  switch (tier) {
    case DataTier::kSharedMemory: return "shared-memory";
    case DataTier::kRpc: return "rpc";
    case DataTier::kCache: return "cache";
  }
  return "?";
}

double LatencyModel::transfer_s(DataTier tier, std::size_t bytes) const {
  const double b = static_cast<double>(bytes);
  switch (tier) {
    case DataTier::kSharedMemory: return shm_base_s + b / shm_bw_Bps;
    case DataTier::kRpc: return rpc_base_s + b / rpc_bw_Bps;
    case DataTier::kCache: return cache_base_s + b / cache_bw_Bps;
  }
  throw Error("unknown data tier");
}

double LatencyModel::learner_compute_s(std::size_t batch_size,
                                       std::size_t param_count,
                                       double slot_tflops) const {
  // Forward + backward ≈ 6 FLOPs per parameter per sample.
  const double flops = 6.0 * static_cast<double>(param_count) * param_scale *
                       static_cast<double>(batch_size);
  return learner_base_s +
         learner_per_sample_s * static_cast<double>(batch_size) +
         flops / (slot_tflops * 1e12 * gpu_efficiency);
}

double LatencyModel::aggregate_s(std::size_t n_grads,
                                 std::size_t param_count) const {
  const double bytes = 4.0 * static_cast<double>(param_count) * param_scale *
                       static_cast<double>(n_grads);
  return param_fn_base_s + bytes / aggregate_bw_Bps;
}

double LatencyModel::actor_sample_s(std::size_t steps, bool image_env) const {
  return static_cast<double>(steps) *
         (image_env ? atari_step_s : mujoco_step_s);
}

double LatencyModel::serve_compute_s(std::size_t batch_size,
                                     std::size_t param_count) const {
  // Forward only (no backward): ~2 FLOPs per parameter per sample, against
  // a CPU-core compute budget in the actor-container class (~25 GFLOP/s
  // sustained — the serving fleet runs on the CPU VMs, not the GPUs).
  const double flops = 2.0 * static_cast<double>(param_count) * param_scale *
                       static_cast<double>(batch_size);
  return serve_base_s +
         serve_per_sample_s * static_cast<double>(batch_size) +
         flops / 25e9;
}

double LatencyModel::jittered(double base, Rng& rng) const {
  const double factor =
      std::max(0.2, 1.0 + jitter_frac * rng.normal());
  return base * factor;
}

}  // namespace stellaris::serverless
