#include "nn/distributions.hpp"

#include <cmath>
#include <numbers>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stellaris::nn {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;  // log(2π)
}

Tensor gaussian_sample(const Tensor& mean, const Tensor& log_std, Rng& rng) {
  Tensor out;
  gaussian_sample_into(out, mean, log_std, rng);
  return out;
}

void gaussian_sample_into(Tensor& out, const Tensor& mean,
                          const Tensor& log_std, Rng& rng) {
  STELLARIS_CHECK_MSG(mean.rank() == 2 && log_std.rank() == 1 &&
                          log_std.dim(0) == mean.dim(1),
                      "gaussian_sample shape mismatch");
  const std::size_t m = mean.dim(0), d = mean.dim(1);
  out.ensure_shape(mean.shape());
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < d; ++j)
      out.at(i, j) = mean.at(i, j) +
                     std::exp(log_std[j]) * static_cast<float>(rng.normal());
}

Tensor gaussian_log_prob(const Tensor& mean, const Tensor& log_std,
                         const Tensor& actions) {
  Tensor out;
  gaussian_log_prob_into(out, mean, log_std, actions);
  return out;
}

void gaussian_log_prob_into(Tensor& out, const Tensor& mean,
                            const Tensor& log_std, const Tensor& actions) {
  STELLARIS_CHECK_MSG(mean.same_shape(actions), "log_prob shape mismatch");
  const std::size_t m = mean.dim(0), d = mean.dim(1);
  out.ensure_shape({m});
  for (std::size_t i = 0; i < m; ++i) {
    double lp = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double ls = log_std[j];
      const double z = (actions.at(i, j) - mean.at(i, j)) / std::exp(ls);
      lp += -0.5 * z * z - ls - 0.5 * kLog2Pi;
    }
    out[i] = static_cast<float>(lp);
  }
}

GaussianLogProbGrad gaussian_log_prob_backward(const Tensor& mean,
                                               const Tensor& log_std,
                                               const Tensor& actions,
                                               const Tensor& coeff) {
  STELLARIS_CHECK_MSG(coeff.rank() == 1 && coeff.dim(0) == mean.dim(0),
                      "coeff must be (batch)");
  const std::size_t m = mean.dim(0), d = mean.dim(1);
  GaussianLogProbGrad g{Tensor({m, d}), Tensor({d})};
  for (std::size_t i = 0; i < m; ++i) {
    const float c = coeff[i];
    for (std::size_t j = 0; j < d; ++j) {
      const double ls = log_std[j];
      const double inv_var = std::exp(-2.0 * ls);
      const double diff = actions.at(i, j) - mean.at(i, j);
      // ∂logp/∂mean = (a-μ)/σ²;  ∂logp/∂logσ = ((a-μ)/σ)² − 1.
      g.dmean.at(i, j) = static_cast<float>(c * diff * inv_var);
      g.dlog_std[j] +=
          static_cast<float>(c * (diff * diff * inv_var - 1.0));
    }
  }
  return g;
}

double gaussian_entropy(const Tensor& log_std) {
  double h = 0.0;
  for (std::size_t j = 0; j < log_std.numel(); ++j)
    h += log_std[j] + 0.5 * (kLog2Pi + 1.0);
  return h;
}

Tensor gaussian_kl(const Tensor& mean_p, const Tensor& log_std_p,
                   const Tensor& mean_q, const Tensor& log_std_q) {
  STELLARIS_CHECK_MSG(mean_p.same_shape(mean_q), "kl shape mismatch");
  const std::size_t m = mean_p.dim(0), d = mean_p.dim(1);
  Tensor out({m});
  for (std::size_t i = 0; i < m; ++i) {
    double kl = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double lp = log_std_p[j], lq = log_std_q[j];
      const double vp = std::exp(2.0 * lp), vq = std::exp(2.0 * lq);
      const double diff = mean_p.at(i, j) - mean_q.at(i, j);
      kl += lq - lp + (vp + diff * diff) / (2.0 * vq) - 0.5;
    }
    out[i] = static_cast<float>(kl);
  }
  return out;
}

std::vector<std::size_t> categorical_sample(const Tensor& logits, Rng& rng) {
  std::vector<std::size_t> actions;
  Tensor probs;
  categorical_sample_into(actions, probs, logits, rng);
  return actions;
}

void categorical_sample_into(std::vector<std::size_t>& actions,
                             Tensor& probs_scratch, const Tensor& logits,
                             Rng& rng) {
  ops::softmax_rows_into(probs_scratch, logits);
  const std::size_t m = probs_scratch.dim(0), n = probs_scratch.dim(1);
  actions.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t pick = n - 1;
    for (std::size_t j = 0; j < n; ++j) {
      acc += probs_scratch.at(i, j);
      if (u < acc) {
        pick = j;
        break;
      }
    }
    actions[i] = pick;
  }
}

Tensor categorical_log_prob(const Tensor& logits,
                            const std::vector<std::size_t>& actions) {
  Tensor out, lsm;
  categorical_log_prob_into(out, lsm, logits, actions);
  return out;
}

void categorical_log_prob_into(Tensor& out, Tensor& lsm_scratch,
                               const Tensor& logits,
                               const std::vector<std::size_t>& actions) {
  STELLARIS_CHECK_MSG(actions.size() == logits.dim(0),
                      "actions/logits batch mismatch");
  ops::log_softmax_rows_into(lsm_scratch, logits);
  out.ensure_shape({actions.size()});
  for (std::size_t i = 0; i < actions.size(); ++i) {
    STELLARIS_DCHECK(actions[i] < logits.dim(1));
    out[i] = lsm_scratch.at(i, actions[i]);
  }
}

Tensor categorical_log_prob_backward(const Tensor& logits,
                                     const std::vector<std::size_t>& actions,
                                     const Tensor& coeff) {
  STELLARIS_CHECK_MSG(coeff.rank() == 1 && coeff.dim(0) == logits.dim(0),
                      "coeff must be (batch)");
  const Tensor probs = ops::softmax_rows(logits);
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  Tensor dlogits({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    const float c = coeff[i];
    for (std::size_t j = 0; j < n; ++j)
      dlogits.at(i, j) = -c * probs.at(i, j);
    dlogits.at(i, actions[i]) += c;
  }
  return dlogits;
}

Tensor categorical_entropy(const Tensor& logits) {
  const Tensor lsm = ops::log_softmax_rows(logits);
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  Tensor out({m});
  for (std::size_t i = 0; i < m; ++i) {
    double h = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double lp = lsm.at(i, j);
      h -= std::exp(lp) * lp;
    }
    out[i] = static_cast<float>(h);
  }
  return out;
}

Tensor categorical_entropy_backward(const Tensor& logits,
                                    const Tensor& coeff) {
  // H = -Σ p·logp;  ∂H/∂l_j = -p_j (logp_j + H)... expanded:
  // ∂H/∂l_j = -p_j (logp_j − Σ_k p_k logp_k) = -p_j(logp_j + H).
  const Tensor lsm = ops::log_softmax_rows(logits);
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  Tensor dlogits({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    double h = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double lp = lsm.at(i, j);
      h -= std::exp(lp) * lp;
    }
    const float c = coeff[i];
    for (std::size_t j = 0; j < n; ++j) {
      const double lp = lsm.at(i, j);
      dlogits.at(i, j) =
          static_cast<float>(-c * std::exp(lp) * (lp + h));
    }
  }
  return dlogits;
}

Tensor categorical_kl(const Tensor& logits_p, const Tensor& logits_q) {
  STELLARIS_CHECK_MSG(logits_p.same_shape(logits_q), "kl shape mismatch");
  const Tensor lp = ops::log_softmax_rows(logits_p);
  const Tensor lq = ops::log_softmax_rows(logits_q);
  const std::size_t m = lp.dim(0), n = lp.dim(1);
  Tensor out({m});
  for (std::size_t i = 0; i < m; ++i) {
    double kl = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      kl += std::exp(lp.at(i, j)) * (lp.at(i, j) - lq.at(i, j));
    out[i] = static_cast<float>(std::max(kl, 0.0));
  }
  return out;
}

}  // namespace stellaris::nn
