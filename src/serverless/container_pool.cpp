#include "serverless/container_pool.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace stellaris::serverless {

ContainerPool::ContainerPool(std::size_t capacity, const LatencyModel& lat,
                             std::uint64_t seed, std::string name)
    : capacity_(capacity), slots_(capacity), lat_(lat), rng_(seed),
      name_(std::move(name)) {
  STELLARIS_CHECK_MSG(capacity > 0, "container pool needs capacity > 0");
  const std::string prefix = "containers." + name_ + ".";
  auto& m = obs::metrics();
  m_cold_ = &m.counter(prefix + "cold_starts");
  m_warm_ = &m.counter(prefix + "warm_starts");
  m_prewarmed_ = &m.counter(prefix + "prewarmed");
  m_kills_ = &m.counter(prefix + "kills");
  m_busy_ = &m.gauge(prefix + "busy");
}

std::optional<ContainerPool::Acquisition> ContainerPool::acquire(double now) {
  MutexLock lock(mu_);
  if (busy_count_ >= slots_.size()) return std::nullopt;
  // Prefer a warm idle container; expire stale keep-alives on the way.
  std::size_t cold_candidate = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (s.state == State::kWarmIdle && s.warm_until < now)
      s.state = State::kCold;
    if (s.state == State::kWarmIdle) {
      s.state = State::kBusy;
      ++busy_count_;
      ++warm_starts_;
      m_warm_->add();
      m_busy_->set(static_cast<double>(busy_count_));
      return Acquisition{i, lat_.jittered(lat_.warm_start_s, rng_), false};
    }
    if (s.state == State::kCold && cold_candidate == slots_.size())
      cold_candidate = i;
  }
  STELLARIS_CHECK(cold_candidate < slots_.size());
  slots_[cold_candidate].state = State::kBusy;
  ++busy_count_;
  ++cold_starts_;
  m_cold_->add();
  m_busy_->set(static_cast<double>(busy_count_));
  return Acquisition{cold_candidate, lat_.jittered(lat_.cold_start_s, rng_),
                     true};
}

void ContainerPool::release(std::size_t container_id, double now) {
  MutexLock lock(mu_);
  STELLARIS_CHECK_MSG(container_id < slots_.size(), "bad container id");
  Slot& s = slots_[container_id];
  STELLARIS_CHECK_MSG(s.state == State::kBusy,
                      "releasing a container that is not busy");
  s.state = State::kWarmIdle;
  s.warm_until = now + lat_.keep_alive_s;
  --busy_count_;
  m_busy_->set(static_cast<double>(busy_count_));
}

void ContainerPool::kill(std::size_t container_id) {
  MutexLock lock(mu_);
  STELLARIS_CHECK_MSG(container_id < slots_.size(), "bad container id");
  Slot& s = slots_[container_id];
  if (s.state == State::kBusy) {
    --busy_count_;
    m_busy_->set(static_cast<double>(busy_count_));
  }
  if (s.state != State::kCold) {
    ++kills_;
    m_kills_->add();
  }
  s.state = State::kCold;
  s.warm_until = -1.0;
}

std::size_t ContainerPool::prewarm(std::size_t n, double now) {
  MutexLock lock(mu_);
  std::size_t warmed = 0;
  for (auto& s : slots_) {
    if (warmed == n) break;
    if (s.state == State::kWarmIdle && s.warm_until < now)
      s.state = State::kCold;
    if (s.state == State::kCold) {
      s.state = State::kWarmIdle;
      s.warm_until = now + lat_.keep_alive_s;
      ++warmed;
    }
  }
  m_prewarmed_->add(warmed);
  return warmed;
}

std::uint64_t ContainerPool::kills() const {
  MutexLock lock(mu_);
  return kills_;
}

std::size_t ContainerPool::busy() const {
  MutexLock lock(mu_);
  return busy_count_;
}

std::uint64_t ContainerPool::cold_starts() const {
  MutexLock lock(mu_);
  return cold_starts_;
}

std::uint64_t ContainerPool::warm_starts() const {
  MutexLock lock(mu_);
  return warm_starts_;
}

std::size_t ContainerPool::warm_idle(double now) const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& s : slots_)
    if (s.state == State::kWarmIdle && s.warm_until >= now) ++n;
  return n;
}

}  // namespace stellaris::serverless
