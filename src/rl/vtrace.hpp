// V-trace off-policy correction (Espeholt et al., IMPALA, 2018), used by
// the IMPACT integration (§VIII-B1): truncated importance weights turn
// behaviour-policy returns into value targets and policy-gradient
// advantages for the current (or target) policy.
#pragma once

#include "tensor/tensor.hpp"

namespace stellaris::rl {

struct VtraceResult {
  Tensor vs;             ///< (T) corrected value targets
  Tensor pg_advantages;  ///< (T) policy-gradient advantages
};

/// Compute V-trace targets.
///   ρ_t = min(ρ̄, exp(target_logp_t − behaviour_logp_t))
///   c_t = min(c̄, exp(target_logp_t − behaviour_logp_t))
///   δ_t = ρ_t (r_t + γ·V_{t+1}·(1−d_t) − V_t)
///   vs_t = V_t + δ_t + γ·c_t·(1−d_t)·(vs_{t+1} − V_{t+1})
///   adv_t = ρ_t (r_t + γ·vs_{t+1}·(1−d_t) − V_t)
/// `bootstrap_value` stands in for V_{T} when the batch is truncated.
VtraceResult compute_vtrace(const Tensor& behaviour_logp,
                            const Tensor& target_logp, const Tensor& rewards,
                            const Tensor& dones, const Tensor& values,
                            float bootstrap_value, double gamma,
                            double rho_bar = 1.0, double c_bar = 1.0);

}  // namespace stellaris::rl
