// Reusable scratch-tensor pool.
//
// Hot paths that need a temporary (a GEMM pack buffer, a per-sample
// coefficient vector, an im2col staging area) borrow one from the
// thread-local pool instead of constructing a fresh Tensor: after the first
// few iterations every take() is served from a previously returned buffer
// and the steady state allocates nothing. Contents of a leased tensor are
// unspecified — callers must fully overwrite (all the *_into kernels do).
//
// The pool is thread-local, so kernel worker threads each reuse their own
// buffers with no locking; leases returned on a thread stay with that
// thread. Reuse volume is exported via the "kernel.scratch_bytes_reused" /
// "kernel.scratch_bytes_allocated" metrics counters.
#pragma once

#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace stellaris::ops {

class ScratchPool {
 public:
  /// RAII lease: hands the tensor back to the pool on destruction.
  class Lease {
   public:
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&& other) noexcept = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    Tensor& tensor() { return *t_; }
    Tensor& operator*() { return *t_; }
    Tensor* operator->() { return t_.get(); }

   private:
    friend class ScratchPool;
    Lease(ScratchPool* pool, std::unique_ptr<Tensor> t)
        : pool_(pool), t_(std::move(t)) {}

    ScratchPool* pool_;
    std::unique_ptr<Tensor> t_;
  };

  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// Borrow a tensor of `shape` with unspecified contents. Prefers the
  /// smallest pooled buffer whose capacity already fits; allocates only
  /// when none does.
  Lease take(const Shape& shape);

  /// Buffers currently parked in the pool (test hook).
  std::size_t pooled() const { return free_.size(); }

  /// The calling thread's pool.
  static ScratchPool& local();

 private:
  void give_back(std::unique_ptr<Tensor> t);

  std::vector<std::unique_ptr<Tensor>> free_;
};

}  // namespace stellaris::ops
