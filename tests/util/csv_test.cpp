#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace stellaris {
namespace {

TEST(Table, CsvBasics) {
  Table t({"a", "b"});
  t.row().add("x").add(1.5, 1);
  t.row().add(std::size_t{7}).add("y");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1.5\n7,y\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"c"});
  t.row().add("has,comma");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "c\n\"has,comma\"\n");

  Table q({"c"});
  q.row().add("say \"hi\"");
  std::ostringstream os2;
  q.write_csv(os2);
  EXPECT_EQ(os2.str(), "c\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, PrettyAlignsColumns) {
  Table t({"name", "v"});
  t.row().add("long-name").add("1");
  std::ostringstream os;
  t.write_pretty(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name      | v |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 1 |"), std::string::npos);
}

TEST(Table, AddWithoutRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add("x"), Error);
}

TEST(Table, OverfullRowThrows) {
  Table t({"a"});
  t.row().add("1");
  EXPECT_THROW(t.add("2"), Error);
}

TEST(Table, IncompletePreviousRowThrows) {
  Table t({"a", "b"});
  t.row().add("1");
  EXPECT_THROW(t.row(), Error);
}

TEST(Table, EmptyColumnsThrows) { EXPECT_THROW(Table({}), Error); }

TEST(Table, NumericFormatting) {
  Table t({"x"});
  t.row().add(3.14159, 2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x\n3.14\n");
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().add("1").add("2").add("3");
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace stellaris
