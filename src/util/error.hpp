// Error handling primitives shared by every Stellaris module.
//
// Policy (per C++ Core Guidelines E.2/E.3): programming errors and violated
// preconditions throw `stellaris::Error`, which carries the failing
// expression and location. Hot loops use STELLARIS_DCHECK, compiled out in
// release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace stellaris {

/// Base exception for all Stellaris failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a shape/dimension contract between tensors is violated.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Thrown when a cache lookup misses or times out.
class CacheError : public Error {
 public:
  explicit CacheError(const std::string& what) : Error(what) {}
};

/// Thrown on invalid training / cluster configuration.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_check(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace stellaris

/// Always-on invariant check; throws stellaris::Error on failure.
#define STELLARIS_CHECK(expr)                                              \
  do {                                                                     \
    if (!(expr)) ::stellaris::detail::fail_check(#expr, __FILE__, __LINE__, \
                                                 "");                      \
  } while (0)

/// Always-on invariant check with a streamed message.
#define STELLARIS_CHECK_MSG(expr, msg)                                \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream os_;                                         \
      os_ << msg;                                                     \
      ::stellaris::detail::fail_check(#expr, __FILE__, __LINE__,      \
                                      os_.str());                     \
    }                                                                 \
  } while (0)

/// Debug-only check for hot paths; disappears when NDEBUG is defined.
#ifdef NDEBUG
#define STELLARIS_DCHECK(expr) ((void)0)
#else
#define STELLARIS_DCHECK(expr) STELLARIS_CHECK(expr)
#endif
