// Convolution lowering: im2col / col2im. The GEMM and elementwise kernels
// live in gemm.cpp / elementwise.cpp (see ops.hpp for the map).
#include <algorithm>

#include "tensor/ops.hpp"

namespace stellaris::ops {

void im2col_into(Tensor& cols, const Tensor& input, const Conv2dSpec& spec) {
  const std::size_t chw = spec.in_channels * spec.in_h * spec.in_w;
  STELLARIS_CHECK_MSG(input.rank() == 2 && input.dim(1) == chw,
                      "im2col input must be (N, C*H*W); got "
                          << shape_str(input.shape()) << " vs C*H*W=" << chw);
  STELLARIS_CHECK_MSG(&cols != &input, "im2col_into: output aliases input");
  const std::size_t batch = input.dim(0);
  const std::size_t oh = spec.out_h(), ow = spec.out_w();
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  cols.ensure_shape({batch * oh * ow, patch});
  const float* pin = input.data().data();
  float* pc = cols.data().data();

  for (std::size_t n = 0; n < batch; ++n) {
    const float* img = pin + n * chw;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float* dst = pc + ((n * oh + oy) * ow + ox) * patch;
        for (std::size_t c = 0; c < spec.in_channels; ++c) {
          const float* plane = img + c * spec.in_h * spec.in_w;
          for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                static_cast<std::ptrdiff_t>(spec.padding);
            for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                  static_cast<std::ptrdiff_t>(spec.padding);
              float v = 0.0f;
              if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(spec.in_h) &&
                  ix >= 0 && ix < static_cast<std::ptrdiff_t>(spec.in_w))
                v = plane[static_cast<std::size_t>(iy) * spec.in_w +
                          static_cast<std::size_t>(ix)];
              *dst++ = v;
            }
          }
        }
      }
    }
  }
}

Tensor im2col(const Tensor& input, const Conv2dSpec& spec) {
  Tensor cols;
  im2col_into(cols, input, spec);
  return cols;
}

void col2im_into(Tensor& out, const Tensor& cols, const Conv2dSpec& spec,
                 std::size_t batch) {
  const std::size_t oh = spec.out_h(), ow = spec.out_w();
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  STELLARIS_CHECK_MSG(cols.rank() == 2 && cols.dim(0) == batch * oh * ow &&
                          cols.dim(1) == patch,
                      "col2im shape mismatch: " << shape_str(cols.shape()));
  STELLARIS_CHECK_MSG(&out != &cols, "col2im_into: output aliases input");
  const std::size_t chw = spec.in_channels * spec.in_h * spec.in_w;
  out.ensure_shape({batch, chw});
  const float* pc = cols.data().data();
  float* pout = out.data().data();
  std::fill(pout, pout + batch * chw, 0.0f);  // scatter accumulates below

  for (std::size_t n = 0; n < batch; ++n) {
    float* img = pout + n * chw;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const float* src = pc + ((n * oh + oy) * ow + ox) * patch;
        for (std::size_t c = 0; c < spec.in_channels; ++c) {
          float* plane = img + c * spec.in_h * spec.in_w;
          for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                static_cast<std::ptrdiff_t>(spec.padding);
            for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                  static_cast<std::ptrdiff_t>(spec.padding);
              const float v = *src++;
              if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(spec.in_h) &&
                  ix >= 0 && ix < static_cast<std::ptrdiff_t>(spec.in_w))
                plane[static_cast<std::size_t>(iy) * spec.in_w +
                      static_cast<std::size_t>(ix)] += v;
            }
          }
        }
      }
    }
  }
}

Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, std::size_t batch) {
  Tensor out;
  col2im_into(out, cols, spec, batch);
  return out;
}

}  // namespace stellaris::ops
