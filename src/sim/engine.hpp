// Deterministic discrete-event simulation engine.
//
// The benchmark harness replays the paper's cluster (GPUs, actors,
// serverless invocations, cache round-trips) in *virtual time*: every
// latency is an event scheduled on this engine, so an entire training run
// is exactly reproducible regardless of host core count. Events at equal
// timestamps execute in schedule order (a monotone sequence number breaks
// ties), which pins the interleaving of concurrent learner completions —
// exactly the source of staleness the paper studies.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace stellaris::sim {

/// Virtual time in seconds.
using SimTime = double;

class Driver;

class Engine {
 public:
  /// Cancellation handle for events scheduled via the *_cancellable
  /// variants: setting `*handle = true` before the event's timestamp makes
  /// the engine discard it WITHOUT advancing virtual time to it. This is
  /// how periodic timers (fault reclamation arrivals, retry deadlines) are
  /// torn down when a run finishes — a dead timer far in the future must
  /// not stretch the run's measured makespan. Atomic so a cancellation can
  /// be requested from outside the engine thread when a concurrent
  /// execution driver is active (sim/driver.hpp).
  using CancelHandle = std::shared_ptr<std::atomic<bool>>;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (>= now).
  void schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` `delay` seconds from now.
  void schedule_after(SimTime delay, std::function<void()> fn);

  /// Like schedule_at, but returns a handle that cancels the event.
  CancelHandle schedule_cancellable_at(SimTime t, std::function<void()> fn);
  CancelHandle schedule_cancellable_after(SimTime delay,
                                          std::function<void()> fn);

  /// Execute the earliest live event (cancelled events are discarded
  /// silently, without advancing the clock); returns false if none remain.
  bool step();

  /// Run until the event queue is empty.
  void run();

  /// Run until the queue is empty or virtual time would exceed `deadline`.
  void run_until(SimTime deadline);

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

  /// Install the execution driver invocation bodies run on (non-owning;
  /// nullptr restores the process-wide inline fallback). The engine itself
  /// never calls the driver — it only carries the reference so subsystems
  /// reached through the engine (the serverless platform, the trainer's
  /// body factories) agree on one driver per run.
  void set_driver(Driver* driver) { driver_ = driver; }
  Driver& driver() const;

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    std::function<void()> fn;
    CancelHandle cancelled;  ///< null for ordinary (non-cancellable) events
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Driver* driver_ = nullptr;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace stellaris::sim
