// lock-rank pass: the lock hierarchy must agree across its three sources
// of truth — the `lock_rank` constants (src/util/annotated_mutex.hpp), the
// DESIGN.md §11 rank table, and every Mutex/SharedMutex construction site.
//
// Checks, in order:
//   1. no two lock_rank constants share a numeric value (peers that never
//      nest share one *constant*, never a duplicated number);
//   2. every constant has a DESIGN.md table row with the same value, and
//      every table row names a live constant (stale docs are findings);
//   3. every construction carries a string-literal name and a lock_rank::
//      constant (a raw integer or a missing rank defeats both the runtime
//      checker's diagnostics and this cross-check);
//   4. every constructed lock name appears in the DESIGN.md table, and
//      every table lock name is constructed somewhere (catches renames);
//   5. rank order for nestings visible inside a single function: a guard
//      (MutexLock/WriterLock/ReaderLock) constructed while another guard
//      is active must lock a strictly greater rank. Guard mutexes are
//      resolved by variable name against construction sites in the same
//      file or its direct includes; ambiguous or unresolvable names are
//      skipped (the runtime checker still covers them).
#include "analyzer.hpp"
#include "functions.hpp"

#include <optional>
#include <sstream>

namespace stellaris::analyze {

namespace {

bool punct_is(const Token& t, const char* s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}
bool ident_is(const Token& t, const char* s) {
  return t.kind == Token::Kind::kIdent && t.text == s;
}

struct RankConstant {
  std::string name;
  long value = 0;
  std::string file;
  int line = 0;
};

/// `inline constexpr int kX = N;` inside `namespace lock_rank { ... }`.
std::vector<RankConstant> extract_constants(const Project& project) {
  std::vector<RankConstant> out;
  for (const auto& file : project.files) {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!ident_is(toks[i], "namespace") || !ident_is(toks[i + 1], "lock_rank"))
        continue;
      std::size_t open = i + 2;
      if (!punct_is(toks[open], "{")) continue;
      const std::size_t end = match_group(toks, open);
      for (std::size_t j = open; j + 2 < end; ++j) {
        if (toks[j].kind != Token::Kind::kIdent) continue;
        if (toks[j].text.rfind('k', 0) != 0) continue;
        if (!punct_is(toks[j + 1], "=")) continue;
        if (toks[j + 2].kind != Token::Kind::kNumber) continue;
        out.push_back({toks[j].text, std::stol(toks[j + 2].text), file.rel,
                       toks[j].line});
      }
      i = end;
    }
  }
  return out;
}

struct TableRow {
  long value = 0;
  std::string constant;
  std::string lock_name;
  int line = 0;
};

/// DESIGN.md rank-table rows: `|  100 | `kCache` | `cache/...` | ... |`.
std::vector<TableRow> extract_table(const std::string& design_md) {
  std::vector<TableRow> rows;
  std::istringstream in(design_md);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    std::size_t p = raw.find_first_not_of(" \t");
    if (p == std::string::npos || raw[p] != '|') continue;
    // Split on '|'.
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream cs(raw.substr(p + 1));
    while (std::getline(cs, cell, '|')) cells.push_back(cell);
    if (cells.size() < 3) continue;
    auto trim = [](std::string s) {
      const std::size_t a = s.find_first_not_of(" \t");
      if (a == std::string::npos) return std::string();
      const std::size_t b = s.find_last_not_of(" \t");
      return s.substr(a, b - a + 1);
    };
    auto backticked = [&](const std::string& s) -> std::string {
      const std::string t = trim(s);
      if (t.size() >= 2 && t.front() == '`' && t.back() == '`')
        return t.substr(1, t.size() - 2);
      return "";
    };
    const std::string first = trim(cells[0]);
    if (first.empty() ||
        first.find_first_not_of("0123456789") != std::string::npos)
      continue;
    TableRow row;
    row.value = std::stol(first);
    row.constant = backticked(cells[1]);
    row.lock_name = backticked(cells[2]);
    row.line = line;
    if (!row.constant.empty() && row.constant.rfind('k', 0) == 0)
      rows.push_back(row);
  }
  return rows;
}

struct Construction {
  std::string file;
  int line = 0;
  std::string var;        // declared variable name
  std::string lock_name;  // string-literal name ("" when absent)
  std::string constant;   // lock_rank constant ("" when absent)
};

/// `Mutex var{"name", lock_rank::kX}` / `Mutex var("name", lock_rank::kX)`
/// (also SharedMutex, also `static` / member forms — the tokens are the
/// same). Declarations like `Mutex& m` or the wrapper's own methods have
/// no `ident ident ( / {` shape and are skipped.
std::vector<Construction> extract_constructions(const Project& project) {
  std::vector<Construction> out;
  for (const auto& file : project.files) {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!(ident_is(toks[i], "Mutex") || ident_is(toks[i], "SharedMutex")))
        continue;
      if (toks[i + 1].kind != Token::Kind::kIdent) continue;
      if (!punct_is(toks[i + 2], "{") && !punct_is(toks[i + 2], "(")) continue;
      const std::size_t end = match_group(toks, i + 2);
      Construction c;
      c.file = file.rel;
      c.line = toks[i].line;
      c.var = toks[i + 1].text;
      for (std::size_t j = i + 3; j + 1 < end; ++j) {
        if (toks[j].kind == Token::Kind::kString && c.lock_name.empty())
          c.lock_name = toks[j].text;
        if (ident_is(toks[j], "lock_rank") && punct_is(toks[j + 1], "::") &&
            j + 2 < end && toks[j + 2].kind == Token::Kind::kIdent)
          c.constant = toks[j + 2].text;
      }
      out.push_back(c);
      i = end - 1;
    }
  }
  return out;
}

}  // namespace

void check_locks(const Project& project, const std::string& design_md,
                 std::vector<Finding>& out) {
  const auto constants = extract_constants(project);
  const auto rows = extract_table(design_md);
  const auto sites = extract_constructions(project);

  std::map<std::string, const RankConstant*> by_name;
  std::map<long, const RankConstant*> by_value;
  for (const auto& c : constants) {
    by_name[c.name] = &c;
    auto [it, inserted] = by_value.emplace(c.value, &c);
    if (!inserted) {
      const SourceFile* f = project.find(c.file);
      if (f && f->suppressed("lock-rank", c.line)) continue;
      out.push_back({"lock-rank", c.file, c.line, "dup:" + c.name,
                     "rank constant `" + c.name + "` duplicates the value " +
                         std::to_string(c.value) + " of `" + it->second->name +
                         "` — peers that never nest share one constant, "
                         "never a second constant with the same number"});
    }
  }

  std::map<std::string, const TableRow*> table_by_constant;
  std::set<std::string> table_lock_names;
  for (const auto& r : rows) {
    table_by_constant[r.constant] = &r;
    if (!r.lock_name.empty()) table_lock_names.insert(r.lock_name);
  }

  for (const auto& c : constants) {
    const SourceFile* f = project.find(c.file);
    const bool quiet = f && f->suppressed("lock-rank", c.line);
    auto it = table_by_constant.find(c.name);
    if (it == table_by_constant.end()) {
      if (!quiet)
        out.push_back({"lock-rank", c.file, c.line, "design-missing:" + c.name,
                       "rank constant `" + c.name +
                           "` has no row in the DESIGN.md §11 rank table — "
                           "new locks must document their place in the "
                           "hierarchy"});
    } else if (it->second->value != c.value) {
      if (!quiet)
        out.push_back({"lock-rank", c.file, c.line, "design-value:" + c.name,
                       "rank constant `" + c.name + "` = " +
                           std::to_string(c.value) +
                           " but the DESIGN.md §11 table says " +
                           std::to_string(it->second->value)});
    }
  }
  for (const auto& r : rows) {
    if (by_name.count(r.constant)) continue;
    out.push_back({"lock-rank", "DESIGN.md", r.line, "design-stale:" + r.constant,
                   "DESIGN.md §11 table row `" + r.constant +
                       "` names a lock_rank constant that no longer exists"});
  }

  // Construction sites.
  std::set<std::string> constructed_names;
  for (const auto& c : sites) {
    const SourceFile* f = project.find(c.file);
    const bool quiet = f && f->suppressed("lock-rank", c.line);
    if (!c.lock_name.empty()) constructed_names.insert(c.lock_name);
    if (quiet) continue;
    if (c.constant.empty()) {
      out.push_back({"lock-rank", c.file, c.line, "no-rank:" + c.var,
                     "lock `" + c.var +
                         "` is constructed without a lock_rank:: constant — "
                         "raw integers defeat the hierarchy cross-check"});
      continue;
    }
    if (!by_name.count(c.constant)) {
      out.push_back({"lock-rank", c.file, c.line, "unknown-rank:" + c.constant,
                     "lock `" + c.var + "` uses undeclared rank constant `" +
                         c.constant + "`"});
      continue;
    }
    if (c.lock_name.empty()) {
      out.push_back({"lock-rank", c.file, c.line, "no-name:" + c.var,
                     "lock `" + c.var +
                         "` is constructed without a string-literal name — "
                         "the runtime checker's abort message needs one"});
      continue;
    }
    if (!table_lock_names.count(c.lock_name))
      out.push_back({"lock-rank", c.file, c.line, "name:" + c.lock_name,
                     "lock name \"" + c.lock_name +
                         "\" does not appear in the DESIGN.md §11 rank "
                         "table — update the table (or fix the name)"});
  }
  for (const auto& r : rows) {
    if (r.lock_name.empty() || constructed_names.count(r.lock_name)) continue;
    out.push_back({"lock-rank", "DESIGN.md", r.line,
                   "design-unconstructed:" + r.lock_name,
                   "DESIGN.md §11 table names lock \"" + r.lock_name +
                       "\" but no construction site uses that name"});
  }

  // ---- 5. Single-function visible nesting order -------------------------
  // Resolve guard arguments by variable name, scoped to the constructions
  // in the guard's own file plus its direct quoted includes.
  std::map<std::string, std::map<std::string, std::set<long>>> file_vars;
  std::map<std::string, std::map<std::string, std::string>> file_var_names;
  auto add_vars = [&](const std::string& into, const Construction& c) {
    if (c.constant.empty() || !by_name.count(c.constant)) return;
    file_vars[into][c.var].insert(by_name.at(c.constant)->value);
    file_var_names[into][c.var] = c.lock_name;
  };
  for (const auto& c : sites) add_vars(c.file, c);
  for (const auto& file : project.files)
    for (const auto& [target, line] : file.includes) {
      (void)line;
      for (const auto& c : sites) {
        // Includes are rooted at src/ ("util/thread_pool.hpp"); the
        // construction's rel path carries the "src/" prefix.
        if (c.file == target || c.file == "src/" + target)
          add_vars(file.rel, c);
      }
    }

  for (const auto& file : project.files) {
    const auto vars_it = file_vars.find(file.rel);
    const auto& vars = vars_it == file_vars.end()
                           ? std::map<std::string, std::set<long>>{}
                           : vars_it->second;
    if (vars.empty()) continue;
    const auto& toks = file.tokens;
    for (const auto& def : extract_functions(file)) {
      struct ActiveGuard {
        int depth;
        long rank;
        std::string var;       // guard variable (for .unlock() tracking)
        std::string lock_var;  // mutex variable it holds
        int line;
      };
      std::vector<ActiveGuard> active;
      int depth = 0;
      for (std::size_t i = def.body_begin; i < def.body_end && i < toks.size();
           ++i) {
        const Token& t = toks[i];
        if (punct_is(t, "{")) {
          ++depth;
          continue;
        }
        if (punct_is(t, "}")) {
          --depth;
          while (!active.empty() && active.back().depth > depth)
            active.pop_back();
          continue;
        }
        // guard.unlock() — early release deactivates the guard.
        if (t.kind == Token::Kind::kIdent && i + 3 < def.body_end &&
            punct_is(toks[i + 1], ".") && ident_is(toks[i + 2], "unlock")) {
          for (auto& g : active)
            if (g.var == t.text) g.rank = -1;  // released
          continue;
        }
        if (t.kind != Token::Kind::kIdent) continue;
        if (t.text != "MutexLock" && t.text != "WriterLock" &&
            t.text != "ReaderLock")
          continue;
        if (i + 2 >= def.body_end || toks[i + 1].kind != Token::Kind::kIdent ||
            !punct_is(toks[i + 2], "("))
          continue;
        const std::size_t arg_end = match_group(toks, i + 2);
        // First argument identifier that resolves to exactly one rank.
        std::optional<long> rank;
        std::string lock_var;
        for (std::size_t j = i + 3; j + 1 < arg_end; ++j) {
          if (toks[j].kind != Token::Kind::kIdent) continue;
          auto v = vars.find(toks[j].text);
          if (v != vars.end() && v->second.size() == 1) {
            rank = *v->second.begin();
            lock_var = toks[j].text;
            break;
          }
        }
        if (rank.has_value()) {
          for (const auto& g : active) {
            if (g.rank < 0 || g.rank < *rank) continue;
            if (file.suppressed("lock-rank", t.line)) break;
            out.push_back(
                {"lock-rank", file.rel, t.line,
                 "order:" + g.lock_var + ">" + lock_var,
                 "guard over `" + lock_var + "` (rank " +
                     std::to_string(*rank) + ") acquired while `" +
                     g.lock_var + "` (rank " + std::to_string(g.rank) +
                     ", line " + std::to_string(g.line) +
                     ") is held — ranks must strictly increase "
                     "(DESIGN.md §11)"});
            break;
          }
          active.push_back(
              {depth, *rank, toks[i + 1].text, lock_var, t.line});
        }
        i = arg_end - 1;
      }
    }
  }
}

}  // namespace stellaris::analyze
