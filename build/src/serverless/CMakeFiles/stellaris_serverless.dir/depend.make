# Empty dependencies file for stellaris_serverless.
# This may be replaced when dependencies are built.
