// Example: plugging a custom environment into the actor/learner stack.
//
// Implements a small continuous-control task (a 2-D point chasing a moving
// goal) against the envs::Env interface, then trains it directly with the
// library's Actor + PPO + optimizer primitives — no Stellaris orchestration,
// just the RL core. This is the template for adopting the library on your
// own simulator.
//
//   ./build/examples/custom_environment [updates]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "nn/optimizer.hpp"
#include "rl/actor.hpp"
#include "rl/gae.hpp"
#include "rl/ppo.hpp"
#include "util/csv.hpp"

namespace {

using namespace stellaris;

/// A point mass on the plane: actions are accelerations, reward is negative
/// distance to a goal that drifts in a circle. Episodes last 100 steps.
class PointChaseEnv final : public envs::Env {
 public:
  PointChaseEnv() {
    spec_.name = "PointChase";
    spec_.obs = nn::ObsSpec::vector(6);  // pos, vel, goal
    spec_.action_kind = nn::ActionKind::kContinuous;
    spec_.act_dim = 2;
    spec_.max_steps = 100;
    spec_.reward_scale = -50.0;
  }

  const envs::EnvSpec& spec() const override { return spec_; }

  std::vector<float> reset(std::uint64_t seed) override {
    Rng rng(seed);
    x_ = rng.uniform(-1.0, 1.0);
    y_ = rng.uniform(-1.0, 1.0);
    vx_ = vy_ = 0.0;
    phase_ = rng.uniform(0.0, 6.28);
    step_ = 0;
    return observe();
  }

  envs::StepResult step(std::span<const float> action) override {
    STELLARIS_CHECK(action.size() == 2);
    const double ax = std::clamp<double>(action[0], -1.0, 1.0);
    const double ay = std::clamp<double>(action[1], -1.0, 1.0);
    vx_ = 0.9 * vx_ + 0.1 * ax;
    vy_ = 0.9 * vy_ + 0.1 * ay;
    x_ += vx_;
    y_ += vy_;
    phase_ += 0.05;
    ++step_;
    const double dx = x_ - goal_x(), dy = y_ - goal_y();
    envs::StepResult r;
    r.reward = -std::sqrt(dx * dx + dy * dy);
    r.done = step_ >= spec_.max_steps;
    r.obs = observe();
    return r;
  }

 private:
  double goal_x() const { return std::cos(phase_); }
  double goal_y() const { return std::sin(phase_); }
  std::vector<float> observe() const {
    return {static_cast<float>(x_),        static_cast<float>(y_),
            static_cast<float>(vx_),       static_cast<float>(vy_),
            static_cast<float>(goal_x()),  static_cast<float>(goal_y())};
  }

  envs::EnvSpec spec_;
  double x_ = 0, y_ = 0, vx_ = 0, vy_ = 0, phase_ = 0;
  std::size_t step_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace stellaris;
  const int updates = argc > 1 ? std::atoi(argv[1]) : 80;

  PointChaseEnv env_spec_probe;
  const auto& spec = env_spec_probe.spec();
  nn::ActorCritic model(spec.obs, spec.action_kind, spec.act_dim,
                        nn::NetworkSpec::mujoco(32), 7);
  rl::Actor actor(std::make_unique<PointChaseEnv>(), 123);
  PointChaseEnv eval_env;

  rl::PpoConfig ppo;
  ppo.lr = 3e-3;
  nn::AdamOptimizer opt(ppo.lr);
  auto params = model.flat_params();

  Table curve({"update", "avg_episode_reward"});
  for (int u = 0; u <= updates; ++u) {
    model.set_flat_params(params);
    auto batch = actor.sample(model, 400, static_cast<std::uint64_t>(u));
    rl::compute_gae(batch, ppo.gamma, ppo.gae_lambda);
    rl::normalize_advantages(batch);
    for (int e = 0; e < 4; ++e) {
      model.set_flat_params(params);
      model.zero_grad();
      (void)rl::ppo_compute_gradients(model, batch, ppo);
      auto grad = model.flat_grads();
      nn::clip_grad_norm(grad, ppo.max_grad_norm);
      opt.step(params, grad);
    }
    if (u % 10 == 0) {
      model.set_flat_params(params);
      curve.row().add(static_cast<std::size_t>(u)).add(
          rl::evaluate_policy(eval_env, model, 5, 900 + u), 2);
    }
  }
  curve.emit("PointChase learning curve (reward is negative distance; it"
             " should climb toward 0)");
  return 0;
}
