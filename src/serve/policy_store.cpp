#include "serve/policy_store.hpp"

#include "core/policy_io.hpp"
#include "obs/obs.hpp"

namespace stellaris::serve {

namespace keys {
std::string policy(const std::string& tenant, std::uint64_t version) {
  return "serve/" + tenant + "/policy/v" + std::to_string(version);
}
}  // namespace keys

PolicyStore::PolicyStore(cache::DistributedCache& cache)
    : cache_(cache),
      m_decodes_(&obs::metrics().counter("serve.policy_decodes")),
      m_reuses_(&obs::metrics().counter("serve.policy_reuses")) {}

void PolicyStore::publish(const std::string& tenant,
                          const std::vector<float>& params,
                          std::uint64_t version, double cost_mult) {
  const std::string key = keys::policy(tenant, version);
  cache_.put(key, core::encode_policy(params, version));
  // A republish (same key, new cache entry version) must re-decode AND may
  // carry a new multiplier; forgetting the stale snapshot covers both.
  auto it = decoded_.find(key);
  if (it != decoded_.end()) decoded_.erase(it);
  decoded_[key].cost_mult = cost_mult;
}

PolicyRef PolicyStore::load(const std::string& tenant,
                            std::uint64_t version) {
  const std::string key = keys::policy(tenant, version);
  const cache::CacheValue value = cache_.get_or_throw(key);
  Decoded& slot = decoded_[key];
  if (slot.snap && slot.cache_version == value.version) {
    ++reuses_;
    m_reuses_->add();
    return slot.snap;
  }
  auto snap = std::make_shared<PolicySnapshot>();
  snap->version = core::decode_policy_into(value.bytes(), snap->params);
  slot.snap = std::move(snap);
  slot.cache_version = value.version;
  ++decodes_;
  m_decodes_->add();
  return slot.snap;
}

double PolicyStore::cost_mult(const std::string& tenant,
                              std::uint64_t version) const {
  const auto it = decoded_.find(keys::policy(tenant, version));
  return it == decoded_.end() ? 1.0 : it->second.cost_mult;
}

}  // namespace stellaris::serve
