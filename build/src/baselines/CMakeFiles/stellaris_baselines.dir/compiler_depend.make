# Empty compiler generated dependencies file for stellaris_baselines.
# This may be replaced when dependencies are built.
