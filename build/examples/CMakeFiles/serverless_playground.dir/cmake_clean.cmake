file(REMOVE_RECURSE
  "CMakeFiles/serverless_playground.dir/serverless_playground.cpp.o"
  "CMakeFiles/serverless_playground.dir/serverless_playground.cpp.o.d"
  "serverless_playground"
  "serverless_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
