// stellaris_analyze — CLI for the whole-project invariant checker.
//
//   stellaris_analyze [--root DIR] [--layers FILE] [--baseline FILE]
//                     [--lint] [--self-test[=RULE]]
//
// Exit codes: 0 clean, 1 findings (or self-test/lint failures), 2 usage or
// configuration error (unreadable layers/baseline file, bad flag).
//
// --baseline FILE suppresses findings whose id ("<rule> <file> <key>")
// appears in FILE; entries matching no current finding are *stale* and
// fail the run — the baseline only ever shrinks. --lint additionally runs
// tools/lint/stellaris_lint (the line-regex pass) over the same root, so
// CI needs a single entry point for both tools.
#include "analyzer.hpp"

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include <sys/wait.h>

namespace {

int run_lint(const std::string& root) {
  const std::string cmd =
      "python3 '" + root + "/tools/lint/stellaris_lint' --root '" + root + "'";
  std::cout << "stellaris_analyze: running lint: " << cmd << std::endl;
  const int status = std::system(cmd.c_str());
  if (status < 0) {
    std::cerr << "stellaris_analyze: failed to spawn lint\n";
    return 2;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 2;
}

void usage(std::ostream& os) {
  os << "usage: stellaris_analyze [--root DIR] [--layers FILE]\n"
        "                         [--baseline FILE] [--lint]\n"
        "                         [--self-test[=RULE]]\n"
        "rules: layer-dag lock-rank driver-purity ledger-schema\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stellaris::analyze;

  std::string root = ".";
  std::string layers;
  std::string baseline_path;
  bool lint = false;
  bool self_test = false;
  std::string self_test_rule;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> std::string {
      if (++i >= args.size()) {
        std::cerr << "stellaris_analyze: " << flag << " needs a value\n";
        std::exit(2);
      }
      return args[i];
    };
    if (a == "--root") {
      root = value("--root");
    } else if (a == "--layers") {
      layers = value("--layers");
    } else if (a == "--baseline") {
      baseline_path = value("--baseline");
    } else if (a == "--lint") {
      lint = true;
    } else if (a == "--self-test") {
      self_test = true;
    } else if (a.rfind("--self-test=", 0) == 0) {
      self_test = true;
      self_test_rule = a.substr(12);
    } else if (a == "--help" || a == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "stellaris_analyze: unknown flag `" << a << "`\n";
      usage(std::cerr);
      return 2;
    }
  }

  if (self_test)
    return run_selftest(root + "/tools/analyze/selftest", self_test_rule);

  if (layers.empty()) layers = root + "/tools/analyze/layers.toml";

  std::vector<Finding> findings = analyze_tree(root, layers);

  // Configuration errors (line 0 against the layers file) are fatal.
  for (const auto& f : findings)
    if (f.line == 0 && f.file == layers) {
      std::cerr << "stellaris_analyze: " << f.message << "\n";
      return 2;
    }

  int exit_code = 0;
  if (!baseline_path.empty()) {
    Baseline baseline = parse_baseline_file(baseline_path);
    for (const auto& err : baseline.errors) {
      std::cerr << "stellaris_analyze: " << err << "\n";
      return 2;
    }
    std::vector<Finding> kept;
    std::set<std::string> used;
    for (auto& f : findings) {
      if (baseline.entries.count(f.id()))
        used.insert(f.id());
      else
        kept.push_back(std::move(f));
    }
    findings = std::move(kept);
    for (const auto& [id, line] : baseline.entries)
      if (!used.count(id)) {
        std::cout << baseline_path << ":" << line
                  << ": stale baseline entry (finding no longer fires): " << id
                  << "\n";
        exit_code = 1;
      }
  }

  for (const auto& f : findings) std::cout << f.render() << "\n";
  if (!findings.empty()) {
    std::cout << findings.size() << " finding(s). Suppress a line with "
              << "`analyze:<rule>-ok` or baseline an id (see DESIGN.md §16).\n";
    exit_code = 1;
  }

  if (lint) {
    const int lint_code = run_lint(root);
    if (lint_code != 0) return lint_code == 2 ? 2 : 1;
  }

  if (exit_code == 0)
    std::cout << "stellaris_analyze: clean (layer-dag lock-rank "
                 "driver-purity ledger-schema"
              << (lint ? " + lint" : "") << ")\n";
  return exit_code;
}
