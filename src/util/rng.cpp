#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace stellaris {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_origin_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // All-zero state is the one forbidden state for xoshiro; SplitMix64 cannot
  // produce four zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix the original seed with the stream id through SplitMix64 so streams
  // land in unrelated regions of the state space.
  SplitMix64 sm(seed_origin_ ^ (0x5851f42d4c957f2dULL * (stream + 1)));
  return Rng(sm.next());
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  STELLARIS_DCHECK(n > 0);
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next()) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  // Avoid log(0).
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double ang = 2.0 * std::numbers::pi * u2;
  spare_normal_ = mag * std::sin(ang);
  has_spare_ = true;
  return mag * std::cos(ang);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::size_t Rng::categorical(const std::vector<double>& probs) {
  STELLARIS_DCHECK(!probs.empty());
  const double u = uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return i;
  }
  return probs.size() - 1;  // numeric slack: fall into the last bucket
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_int(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace stellaris
