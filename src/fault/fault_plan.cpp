#include "fault/fault_plan.hpp"

#include "util/error.hpp"

namespace stellaris::fault {

const char* error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNone: return "none";
    case ErrorKind::kCrash: return "crash";
    case ErrorKind::kVmReclaim: return "vm_reclaim";
    case ErrorKind::kCacheError: return "cache_error";
    case ErrorKind::kDeadline: return "deadline";
  }
  return "?";
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kVmReclaim: return "vm_reclaim";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kCacheFail: return "cache_fail";
    case FaultKind::kCacheDelay: return "cache_delay";
  }
  return "?";
}

bool FaultConfig::any() const {
  return crash_prob > 0.0 || straggler_prob > 0.0 ||
         reclaim_rate_per_hour > 0.0 || cache_fail_prob > 0.0 ||
         cache_delay_prob > 0.0;
}

void FaultConfig::validate() const {
  auto check_prob = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0)
      throw ConfigError(std::string(name) + " must lie in [0, 1]");
  };
  check_prob(crash_prob, "crash_prob");
  check_prob(straggler_prob, "straggler_prob");
  check_prob(cache_fail_prob, "cache_fail_prob");
  check_prob(cache_delay_prob, "cache_delay_prob");
  // A certainty of crashing makes every retry chain fail forever: the
  // trainer would spin in virtual time without ever finishing a round.
  if (crash_prob >= 1.0 || cache_fail_prob >= 1.0)
    throw ConfigError("crash/cache_fail_prob must stay < 1 for liveness");
  if (crash_frac_lo < 0.0 || crash_frac_hi > 1.0 ||
      crash_frac_lo > crash_frac_hi)
    throw ConfigError("crash_frac bounds must satisfy 0 <= lo <= hi <= 1");
  if (straggler_mult < 1.0)
    throw ConfigError("straggler_mult must be >= 1");
  if (reclaim_rate_per_hour < 0.0)
    throw ConfigError("reclaim_rate_per_hour must be >= 0");
  if (cache_delay_s < 0.0) throw ConfigError("cache_delay_s must be >= 0");
}

void FaultPlan::validate() const {
  config.validate();
  for (const auto& f : schedule) {
    if (f.time_s < 0.0) throw ConfigError("scheduled fault time must be >= 0");
    if (f.kind == FaultKind::kStraggler && f.magnitude < 1.0)
      throw ConfigError("scheduled straggler magnitude must be >= 1");
    if (f.kind == FaultKind::kCrash &&
        (f.magnitude < 0.0 || f.magnitude > 1.0))
      throw ConfigError("scheduled crash magnitude (completed fraction) "
                        "must lie in [0, 1]");
  }
}

}  // namespace stellaris::fault
