#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>

#include "nn/distributions.hpp"
#include "tensor/scratch.hpp"

namespace stellaris::rl {

LossStats ppo_compute_gradients(nn::ActorCritic& model,
                                const SampleBatch& batch,
                                const PpoConfig& cfg, double ratio_cap) {
  STELLARIS_CHECK_MSG(batch.has_advantages(),
                      "ppo_compute_gradients needs GAE-filled batch");
  const std::size_t n = batch.size();
  STELLARIS_CHECK_MSG(n > 0, "empty batch");
  const double inv_n = 1.0 / static_cast<double>(n);

  // ---- forward ------------------------------------------------------------
  // References into the nets' persistent output buffers; valid through the
  // backward calls below (backward never touches a forward output buffer).
  const Tensor& pol_out = model.policy_forward(batch.obs);
  const Tensor& values = model.value_forward(batch.obs);

  Tensor logp;
  if (batch.action_kind == nn::ActionKind::kContinuous) {
    logp = nn::gaussian_log_prob(pol_out, *model.log_std(),
                                 batch.actions_cont);
  } else {
    logp = nn::categorical_log_prob(pol_out, batch.actions_disc);
  }

  // ---- per-sample surrogate coefficients -----------------------------------
  // Loss L = −E[min(r·A, clip(r)·A, cap·A)] + kl_coeff·KL̂ − ent_coeff·H + VF.
  // dL/dlogp_t = −(1/n)·r_t·A_t·1[surrogate unclipped & r_t < cap]
  //              + (kl_coeff/n)·(r_t − 1)          (k3 KL estimator grad)
  LossStats stats;
  auto coeff_lease = ops::ScratchPool::local().take({n});
  Tensor& coeff = *coeff_lease;
  double sum_ratio = 0.0, max_ratio = 0.0;
  double min_ratio = std::numeric_limits<double>::infinity();
  double surrogate = 0.0, kl_sum = 0.0;
  std::size_t clipped = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const double log_diff =
        std::clamp(static_cast<double>(logp[t]) -
                       static_cast<double>(batch.behaviour_log_probs[t]),
                   -20.0, 20.0);
    const double r = std::exp(log_diff);
    sum_ratio += r;
    max_ratio = std::max(max_ratio, r);
    min_ratio = std::min(min_ratio, r);
    const double a = batch.advantages[t];

    const double r_eff = std::min(r, ratio_cap);
    const double surr1 = r_eff * a;
    const double surr2 =
        std::clamp(r_eff, 1.0 - cfg.clip_param, 1.0 + cfg.clip_param) * a;
    surrogate += std::min(surr1, surr2);

    // The Stellaris truncation (Eq. 2) acts like V-trace's ρ̄: the ratio is
    // *capped* at ρ but keeps multiplying the advantage, so the gradient
    // coefficient is min(r, ρ)·A — never zeroed by the cap. The PPO clip,
    // by contrast, is a real min() in the objective: when the clipped
    // branch is active the gradient vanishes.
    const bool surr1_active = surr1 <= surr2;
    const bool truncated = r > ratio_cap;
    const bool ppo_clipped =
        !surr1_active &&
        (r_eff <= 1.0 - cfg.clip_param || r_eff >= 1.0 + cfg.clip_param);
    if (ppo_clipped || truncated) ++clipped;

    double c = 0.0;
    if (surr1_active || !ppo_clipped) c = -(r_eff * a) * inv_n;

    // KL penalty, k3 estimator: KL̂ = (r − 1) − log r  (≥ 0, unbiased-ish).
    const double kl_t = (r - 1.0) - log_diff;
    kl_sum += kl_t;
    c += cfg.kl_coeff * (r - 1.0) * inv_n;

    coeff[t] = static_cast<float>(c);
  }
  stats.policy_loss = -surrogate * inv_n;
  stats.kl = kl_sum * inv_n;
  stats.mean_ratio = sum_ratio * inv_n;
  stats.max_ratio = max_ratio;
  stats.min_ratio = min_ratio;
  stats.clip_fraction = static_cast<double>(clipped) * inv_n;

  // ---- policy backward ------------------------------------------------------
  if (batch.action_kind == nn::ActionKind::kContinuous) {
    auto g = nn::gaussian_log_prob_backward(pol_out, *model.log_std(),
                                            batch.actions_cont, coeff);
    // Entropy bonus: H depends only on log_std; ∂H/∂logσ_j = 1.
    stats.entropy = nn::gaussian_entropy(*model.log_std());
    for (std::size_t j = 0; j < g.dlog_std.numel(); ++j) {
      g.dlog_std[j] = static_cast<float>(
          g.dlog_std[j] * cfg.log_std_grad_scale - cfg.entropy_coeff);
    }
    model.policy_backward(g.dmean);
    *model.log_std_grad() += g.dlog_std;
  } else {
    Tensor dlogits =
        nn::categorical_log_prob_backward(pol_out, batch.actions_disc, coeff);
    const Tensor ent = nn::categorical_entropy(pol_out);
    stats.entropy = ent.mean();
    if (cfg.entropy_coeff != 0.0) {
      Tensor ent_coeff =
          Tensor::full({n}, static_cast<float>(-cfg.entropy_coeff * inv_n));
      dlogits += nn::categorical_entropy_backward(pol_out, ent_coeff);
    }
    model.policy_backward(dlogits);
  }

  // ---- value backward --------------------------------------------------------
  // VF loss = vf_coeff · (1/n) Σ ½(V_t − target_t)².
  auto dvalues_lease = ops::ScratchPool::local().take({n});
  Tensor& dvalues = *dvalues_lease;
  double vloss = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double err = values[t] - batch.value_targets[t];
    vloss += 0.5 * err * err;
    dvalues[t] = static_cast<float>(cfg.vf_coeff * err * inv_n);
  }
  stats.value_loss = cfg.vf_coeff * vloss * inv_n;
  model.value_backward(dvalues);

  return stats;
}

double adapt_kl_coeff(double kl_coeff, double measured_kl, double kl_target) {
  if (measured_kl > 2.0 * kl_target) return kl_coeff * 1.5;
  if (measured_kl < 0.5 * kl_target) return kl_coeff / 1.5;
  return kl_coeff;
}

}  // namespace stellaris::rl
