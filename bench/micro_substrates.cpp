// Google-benchmark microbenchmarks for the substrates: tensor kernels,
// serialization, the distributed cache, the aggregation kernel, environment
// stepping, and a full learner gradient computation.
#include <benchmark/benchmark.h>

#include "cache/distributed_cache.hpp"
#include "core/parameter_function.hpp"
#include "envs/env.hpp"
#include "nn/distributions.hpp"
#include "rl/actor.hpp"
#include "rl/gae.hpp"
#include "rl/ppo.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stellaris {
namespace {

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::matmul(a, b));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n * 2);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(2);
  Tensor logits = Tensor::randn({256, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::softmax_rows(logits));
}
BENCHMARK(BM_SoftmaxRows);

void BM_Im2col(benchmark::State& state) {
  Rng rng(3);
  ops::Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 8;
  spec.in_h = spec.in_w = 20;
  spec.kernel = 5;
  spec.stride = 2;
  Tensor x = Tensor::randn({8, 3 * 20 * 20}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::im2col(x, spec));
}
BENCHMARK(BM_Im2col);

void BM_CachePutGet(benchmark::State& state) {
  cache::DistributedCache cache;
  cache::Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string key = "k/" + std::to_string(i++ % 128);
    cache.put(key, payload);
    benchmark::DoNotOptimize(cache.get(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_CachePutGet)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_BatchSerialize(benchmark::State& state) {
  auto env = envs::make_env("Hopper");
  nn::ActorCritic policy(env->spec().obs, env->spec().action_kind,
                         env->spec().act_dim, nn::NetworkSpec::mujoco(32), 1);
  rl::Actor actor(envs::make_env("Hopper"), 1);
  auto batch = actor.sample(policy, 128, 0);
  for (auto _ : state) {
    auto bytes = batch.serialize();
    benchmark::DoNotOptimize(rl::SampleBatch::deserialize(bytes));
  }
}
BENCHMARK(BM_BatchSerialize);

void BM_EnvStep(benchmark::State& state) {
  const char* names[] = {"Hopper", "SpaceInvaders"};
  auto env = envs::make_env(names[state.range(0)]);
  env->reset(1);
  Rng rng(1);
  const auto& spec = env->spec();
  std::size_t steps = 0;
  for (auto _ : state) {
    envs::StepResult r;
    if (spec.action_kind == nn::ActionKind::kContinuous) {
      std::vector<float> a(spec.act_dim);
      for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
      r = env->step(a);
    } else {
      r = env->step_discrete(rng.uniform_int(spec.act_dim));
    }
    if (r.done) env->reset(++steps);
    benchmark::DoNotOptimize(r.reward);
  }
}
BENCHMARK(BM_EnvStep)->Arg(0)->Arg(1);

void BM_PpoGradient(benchmark::State& state) {
  auto env_spec = envs::env_spec("Hopper");
  nn::ActorCritic model(env_spec.obs, env_spec.action_kind, env_spec.act_dim,
                        nn::NetworkSpec::mujoco(32), 1);
  rl::Actor actor(envs::make_env("Hopper"), 1);
  auto batch =
      actor.sample(model, static_cast<std::size_t>(state.range(0)), 0);
  rl::PpoConfig cfg;
  rl::compute_gae(batch, cfg.gamma, cfg.gae_lambda);
  rl::normalize_advantages(batch);
  for (auto _ : state) {
    model.zero_grad();
    benchmark::DoNotOptimize(rl::ppo_compute_gradients(model, batch, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PpoGradient)->Arg(128)->Arg(512);

void BM_Aggregation(benchmark::State& state) {
  const std::size_t dim = 4096;
  core::ParameterFunction::Config cfg;
  cfg.optimizer = "sgd";
  cfg.alpha0 = 1.0;
  core::ParameterFunction pf(std::vector<float>(dim, 0.0f), cfg);
  std::vector<core::GradientQueue::Item> group;
  Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    core::GradientQueue::Item item;
    item.msg.grad.resize(dim);
    for (auto& g : item.msg.grad) g = static_cast<float>(rng.normal());
    item.msg.pulled_version = 0;
    item.msg.mean_ratio = rng.uniform(0.8, 1.2);
    group.push_back(std::move(item));
  }
  for (auto _ : state) {
    // Refresh pulled versions so staleness stays valid as versions advance.
    for (auto& item : group) item.msg.pulled_version = pf.version();
    benchmark::DoNotOptimize(pf.aggregate(group));
  }
}
BENCHMARK(BM_Aggregation)->Arg(2)->Arg(8)->Arg(32);

void BM_GaussianLogProb(benchmark::State& state) {
  Rng rng(4);
  Tensor mean = Tensor::randn({512, 6}, rng);
  Tensor log_std = Tensor::randn({6}, rng, 0.3f);
  Tensor actions = Tensor::randn({512, 6}, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(nn::gaussian_log_prob(mean, log_std, actions));
}
BENCHMARK(BM_GaussianLogProb);

}  // namespace
}  // namespace stellaris

BENCHMARK_MAIN();
