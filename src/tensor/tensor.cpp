#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace stellaris {

namespace {

obs::Counter& buffer_alloc_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("tensor.buffer_allocs");
  return c;
}

}  // namespace

void Tensor::note_alloc() { buffer_alloc_counter().add(1); }

std::uint64_t tensor_buffer_allocs() {
  return buffer_alloc_counter().value();
}

std::size_t shape_numel(const Shape& shape) {
  if (shape.empty()) return 0;  // rank 0 == the empty tensor in this library
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i)
    os << (i ? ", " : "") << shape[i];
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {
  if (!data_.empty()) note_alloc();
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  STELLARIS_CHECK_MSG(data_.size() == shape_numel(shape_),
                      "data size " << data_.size() << " != numel of "
                                   << shape_str(shape_));
  if (!data_.empty()) note_alloc();
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), data_(other.data_) {
  if (!data_.empty()) note_alloc();
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (other.data_.size() > data_.capacity()) note_alloc();
  shape_ = other.shape_;
  data_ = other.data_;
  return *this;
}

Tensor Tensor::of(std::initializer_list<float> values) {
  return Tensor({values.size()}, std::vector<float>(values));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::size_t Tensor::dim(std::size_t i) const {
  STELLARIS_CHECK_MSG(i < shape_.size(), "dim " << i << " out of rank "
                                                << shape_.size());
  return shape_[i];
}

float& Tensor::at(std::size_t i, std::size_t j) {
  STELLARIS_DCHECK(rank() == 2 && i < shape_[0] && j < shape_[1]);
  return data_[i * shape_[1] + j];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  STELLARIS_DCHECK(rank() == 2 && i < shape_[0] && j < shape_[1]);
  return data_[i * shape_[1] + j];
}

float& Tensor::at3(std::size_t i, std::size_t j, std::size_t k) {
  STELLARIS_DCHECK(rank() == 3 && i < shape_[0] && j < shape_[1] &&
                   k < shape_[2]);
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

float Tensor::at3(std::size_t i, std::size_t j, std::size_t k) const {
  STELLARIS_DCHECK(rank() == 3 && i < shape_[0] && j < shape_[1] &&
                   k < shape_[2]);
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

Tensor Tensor::reshaped(Shape shape) const {
  STELLARIS_CHECK_MSG(shape_numel(shape) == numel(),
                      "reshape " << shape_str(shape_) << " -> "
                                 << shape_str(shape) << " changes numel");
  return Tensor(std::move(shape), data_);
}

Tensor& Tensor::reshape(Shape shape) {
  STELLARIS_CHECK_MSG(shape_numel(shape) == numel(),
                      "reshape " << shape_str(shape_) << " -> "
                                 << shape_str(shape) << " changes numel");
  shape_ = std::move(shape);
  return *this;
}

Tensor& Tensor::ensure_shape(const Shape& shape) {
  const std::size_t n = shape_numel(shape);
  if (n > data_.capacity()) note_alloc();
  shape_ = shape;
  data_.resize(n);
  return *this;
}

std::span<const float> Tensor::row(std::size_t i) const {
  STELLARIS_CHECK_MSG(rank() == 2 && i < shape_[0],
                      "row(" << i << ") on " << shape_str(shape_));
  return {data_.data() + i * shape_[1], shape_[1]};
}

std::span<float> Tensor::row(std::size_t i) {
  STELLARIS_CHECK_MSG(rank() == 2 && i < shape_[0],
                      "row(" << i << ") on " << shape_str(shape_));
  return {data_.data() + i * shape_[1], shape_[1]};
}

Tensor& Tensor::operator+=(const Tensor& other) {
  STELLARIS_CHECK_MSG(same_shape(other), "shape mismatch in +=: "
                                             << shape_str(shape_) << " vs "
                                             << shape_str(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  STELLARIS_CHECK_MSG(same_shape(other), "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::add_scaled(const Tensor& other, float s) {
  STELLARIS_CHECK_MSG(same_shape(other), "shape mismatch in add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += s * other.data_[i];
  return *this;
}

Tensor& Tensor::fill(float v) {
  std::fill(data_.begin(), data_.end(), v);
  return *this;
}

float Tensor::sum() const {
  // Kahan summation: gradient norms in late training are sums of many tiny
  // terms and naive accumulation loses them in float32.
  float s = 0.0f, c = 0.0f;
  for (float v : data_) {
    const float y = v - c;
    const float t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

float Tensor::mean() const {
  return empty() ? 0.0f : sum() / static_cast<float>(numel());
}

float Tensor::min() const {
  STELLARIS_CHECK_MSG(!empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  STELLARIS_CHECK_MSG(!empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

bool Tensor::all_finite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](float v) { return std::isfinite(v); });
}

Tensor operator+(Tensor a, const Tensor& b) {
  a += b;
  return a;
}

Tensor operator-(Tensor a, const Tensor& b) {
  a -= b;
  return a;
}

Tensor operator*(Tensor a, float s) {
  a *= s;
  return a;
}

Tensor operator*(float s, Tensor a) {
  a *= s;
  return a;
}

}  // namespace stellaris
