#include "core/parameter_function.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace stellaris::core {
namespace {

ParameterFunction::Config sgd_config() {
  ParameterFunction::Config cfg;
  cfg.alpha0 = 1.0;
  cfg.optimizer = "sgd";
  cfg.max_grad_norm = 1e9;
  return cfg;
}

GradientQueue::Item item(std::vector<float> grad, std::uint64_t pulled,
                         double ratio = 1.0) {
  GradientQueue::Item it;
  it.msg.grad = std::move(grad);
  it.msg.pulled_version = pulled;
  it.msg.mean_ratio = ratio;
  return it;
}

TEST(ParameterFunction, SingleFreshGradientIsPlainStep) {
  ParameterFunction pf({1.0f, 2.0f}, sgd_config());
  auto stats = pf.aggregate({item({0.5f, -0.5f}, 0)});
  EXPECT_EQ(stats.new_version, 1u);
  EXPECT_EQ(stats.group_size, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_staleness, 0.0);
  EXPECT_FLOAT_EQ(pf.params()[0], 0.5f);
  EXPECT_FLOAT_EQ(pf.params()[1], 2.5f);
}

TEST(ParameterFunction, GroupMeanIsApplied) {
  ParameterFunction pf({0.0f}, sgd_config());
  auto stats = pf.aggregate({item({1.0f}, 0), item({3.0f}, 0)});
  EXPECT_FLOAT_EQ(pf.params()[0], -2.0f);  // mean of {1,3}
  EXPECT_EQ(stats.group_size, 2u);
}

TEST(ParameterFunction, Eq4WeightsStaleGradients) {
  auto cfg = sgd_config();
  cfg.smooth_v = 3.0;
  cfg.enable_truncation = false;
  ParameterFunction pf({0.0f}, cfg);
  pf.aggregate({item({0.0f}, 0)});  // bump to version 1 with a no-op
  // Gradient pulled at version 0 → staleness 1... make staleness 8 by
  // advancing versions first.
  for (int i = 0; i < 7; ++i) pf.aggregate({item({0.0f}, pf.version())});
  ASSERT_EQ(pf.version(), 8u);
  auto stats = pf.aggregate({item({8.0f}, 0)});  // staleness 8 → δ^{-1/3}=0.5
  EXPECT_DOUBLE_EQ(stats.mean_staleness, 8.0);
  EXPECT_NEAR(stats.mean_lr_factor, 0.5, 1e-9);
  EXPECT_NEAR(pf.params()[0], -4.0f, 1e-5);
}

TEST(ParameterFunction, StalenessLrDisabledUsesFullWeight) {
  auto cfg = sgd_config();
  cfg.enable_staleness_lr = false;
  ParameterFunction pf({0.0f}, cfg);
  for (int i = 0; i < 8; ++i) pf.aggregate({item({0.0f}, pf.version())});
  auto stats = pf.aggregate({item({8.0f}, 0)});
  EXPECT_DOUBLE_EQ(stats.mean_lr_factor, 1.0);
  EXPECT_NEAR(pf.params()[0], -8.0f, 1e-5);
}

TEST(ParameterFunction, TruncationRescalesDriftedGradients) {
  auto cfg = sgd_config();
  cfg.rho = 1.0;
  ParameterFunction pf({0.0f}, cfg);
  // Two learners: ratios 1.0 and 2.0 → R' = 1, scales {1, 0.5}.
  auto stats =
      pf.aggregate({item({2.0f}, 0, 1.0), item({2.0f}, 0, 2.0)});
  EXPECT_NEAR(stats.mean_trunc_scale, 0.75, 1e-9);
  // Update = mean(1·2, 0.5·2) = 1.5.
  EXPECT_NEAR(pf.params()[0], -1.5f, 1e-5);
}

TEST(ParameterFunction, TruncationDisabledLeavesScalesAtOne) {
  auto cfg = sgd_config();
  cfg.enable_truncation = false;
  ParameterFunction pf({0.0f}, cfg);
  auto stats = pf.aggregate({item({2.0f}, 0, 5.0)});
  EXPECT_DOUBLE_EQ(stats.mean_trunc_scale, 1.0);
  EXPECT_NEAR(pf.params()[0], -2.0f, 1e-5);
}

TEST(ParameterFunction, StalenessHistoryRecordsEveryGradient) {
  ParameterFunction pf({0.0f}, sgd_config());
  pf.aggregate({item({0.0f}, 0)});
  pf.aggregate({item({0.0f}, 0), item({0.0f}, 1)});
  const auto& hist = pf.staleness_history();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_DOUBLE_EQ(hist[0], 0.0);
  EXPECT_DOUBLE_EQ(hist[1], 1.0);  // pulled 0, aggregated at version 1
  EXPECT_DOUBLE_EQ(hist[2], 0.0);
}

TEST(ParameterFunction, ClampSegmentIsEnforced) {
  auto cfg = sgd_config();
  cfg.clamp_offset = 1;
  cfg.clamp_len = 1;
  cfg.clamp_lo = -0.5f;
  cfg.clamp_hi = 0.5f;
  ParameterFunction pf({0.0f, 0.0f}, cfg);
  pf.aggregate({item({-10.0f, -10.0f}, 0)});
  EXPECT_FLOAT_EQ(pf.params()[0], 10.0f);  // unclamped dimension
  EXPECT_FLOAT_EQ(pf.params()[1], 0.5f);   // clamped dimension
}

TEST(ParameterFunction, GradNormGuardScalesGroups) {
  auto cfg = sgd_config();
  cfg.max_grad_norm = 1.0;
  ParameterFunction pf({0.0f}, cfg);
  auto stats = pf.aggregate({item({100.0f}, 0)});
  EXPECT_NEAR(stats.grad_norm, 100.0, 1e-6);
  EXPECT_NEAR(pf.params()[0], -1.0f, 1e-5);
}

TEST(ParameterFunction, DimMismatchThrows) {
  ParameterFunction pf({0.0f, 0.0f}, sgd_config());
  EXPECT_THROW(pf.aggregate({item({1.0f}, 0)}), Error);
}

TEST(ParameterFunction, FutureGradientThrows) {
  ParameterFunction pf({0.0f}, sgd_config());
  EXPECT_THROW(pf.aggregate({item({1.0f}, 5)}), Error);
}

TEST(ParameterFunction, EmptyGroupThrows) {
  ParameterFunction pf({0.0f}, sgd_config());
  EXPECT_THROW(pf.aggregate({}), Error);
}

TEST(ParameterFunction, EmptyInitThrows) {
  EXPECT_THROW(ParameterFunction({}, sgd_config()), Error);
}

TEST(ParameterFunction, AdamOptimizerIsSupported) {
  auto cfg = sgd_config();
  cfg.optimizer = "adam";
  cfg.alpha0 = 0.1;
  ParameterFunction pf({1.0f}, cfg);
  pf.aggregate({item({1.0f}, 0)});
  EXPECT_NEAR(pf.params()[0], 0.9f, 1e-4);  // first Adam step ≈ lr
}

}  // namespace
}  // namespace stellaris::core
