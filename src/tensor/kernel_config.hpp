// Threading knobs for the blocked tensor kernels.
//
// The GEMMs partition work over contiguous row panels of the output; each
// output element is always accumulated by exactly one task in the same
// k-ascending order, so results are bit-identical at every thread count.
// Threading therefore only changes wall-clock, never values — the
// deterministic virtual-time sim path is unaffected by turning it on.
//
// Defaults: serial. The STELLARIS_KERNEL_THREADS environment variable
// (read once, at first query) can preset a count — a number, or "auto"
// for hardware_concurrency. set_kernel_threads() overrides at runtime and
// is intended for startup/bench configuration, not for racing against
// in-flight kernels.
#pragma once

#include <cstddef>
#include <cstdint>

namespace stellaris {

class ThreadPool;

namespace ops {

/// Worker count the kernels may use; 0 and 1 both mean serial.
std::size_t kernel_threads();
void set_kernel_threads(std::size_t n);

/// Clamp the kernel thread count so `driver_threads` concurrent invocation
/// bodies (sim/driver.hpp) each running `kernel_threads()`-wide kernels do
/// not oversubscribe the machine: when driver_threads × kernel_threads
/// exceeds the hardware thread count, kernel_threads is reduced to
/// max(1, hardware / driver_threads), with a one-time warning through the
/// leveled logger. `hardware` = 0 queries std::thread::hardware_concurrency
/// (a nonzero value is injectable for tests). Returns the effective kernel
/// thread count. Kernel results are bit-identical at any thread count, so
/// the clamp changes wall-clock only, never values.
std::size_t apply_driver_thread_budget(std::size_t driver_threads,
                                       std::size_t hardware = 0);

/// Minimum GEMM cost (2·m·n·k FLOPs) before a kernel goes parallel — tiny
/// products are cheaper than the fork/join handshake.
std::uint64_t kernel_parallel_min_flops();
void set_kernel_parallel_min_flops(std::uint64_t flops);

namespace detail {
/// The pool shared by all kernels, (re)created to match `threads` on
/// demand. Callers must hold the returned reference only for one kernel
/// dispatch.
ThreadPool& kernel_pool(std::size_t threads);
}  // namespace detail

}  // namespace ops
}  // namespace stellaris
