#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

namespace stellaris {
namespace {

TEST(Logging, ParseLevelNames) {
  const LogLevel fb = LogLevel::kOff;
  EXPECT_EQ(parse_log_level("debug", fb), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info", fb), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn", fb), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning", fb), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", fb), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", fb), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none", fb), LogLevel::kOff);
}

TEST(Logging, ParseLevelIsCaseInsensitive) {
  const LogLevel fb = LogLevel::kOff;
  EXPECT_EQ(parse_log_level("DEBUG", fb), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Warn", fb), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("ERROR", fb), LogLevel::kError);
}

TEST(Logging, ParseLevelDigits) {
  const LogLevel fb = LogLevel::kInfo;
  EXPECT_EQ(parse_log_level("0", fb), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("1", fb), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("2", fb), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("3", fb), LogLevel::kError);
  EXPECT_EQ(parse_log_level("4", fb), LogLevel::kOff);
}

TEST(Logging, ParseLevelFallsBackOnGarbage) {
  EXPECT_EQ(parse_log_level("", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("verbose", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("42", LogLevel::kError), LogLevel::kError);
}

TEST(Logging, TryParseDistinguishesUnknownFromKnown) {
  // try_parse is what the logger uses at startup to decide whether to warn
  // about a misspelled STELLARIS_LOG_LEVEL instead of silently defaulting.
  EXPECT_EQ(try_parse_log_level("WARNING"), LogLevel::kWarn);
  EXPECT_EQ(try_parse_log_level("Off"), LogLevel::kOff);
  EXPECT_EQ(try_parse_log_level("3"), LogLevel::kError);
  EXPECT_FALSE(try_parse_log_level("").has_value());
  EXPECT_FALSE(try_parse_log_level("verbose").has_value());
  EXPECT_FALSE(try_parse_log_level("infos").has_value());
  EXPECT_FALSE(try_parse_log_level("5").has_value());
  EXPECT_FALSE(try_parse_log_level(" info").has_value());
}

TEST(Logging, TimestampIsIso8601Utc) {
  const std::string ts = log_timestamp();
  // "2026-08-06T12:34:56.789Z" — fixed-width fields, T and Z markers.
  ASSERT_EQ(ts.size(), 24u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[16], ':');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts[23], 'Z');
  for (std::size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u, 11u, 12u, 14u, 15u,
                        17u, 18u, 20u, 21u, 22u})
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(ts[i])))
        << "position " << i << " in " << ts;
}

TEST(Logging, MacroIsDanglingElseSafe) {
  // `if (cond) LOG_INFO << ...; else <stmt>;` — the else must bind to the
  // user's if, not to the macro's internal level check. With a bare-if
  // macro this whole statement would be swallowed when cond is false.
  Logger& log = Logger::instance();
  const LogLevel before = log.level();
  log.set_level(LogLevel::kOff);
  bool else_ran = false;
  const bool cond = false;
  if (cond)
    LOG_INFO << "unreachable";
  else
    else_ran = true;
  EXPECT_TRUE(else_ran);
  log.set_level(before);
}

TEST(Logging, SetLevelOverridesEnvironment) {
  Logger& log = Logger::instance();
  const LogLevel before = log.level();
  log.set_level(LogLevel::kError);
  EXPECT_EQ(log.level(), LogLevel::kError);
  log.set_level(before);
}

}  // namespace
}  // namespace stellaris
