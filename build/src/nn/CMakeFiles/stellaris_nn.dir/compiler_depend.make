# Empty compiler generated dependencies file for stellaris_nn.
# This may be replaced when dependencies are built.
