// Admission control at the tenant's front door (DESIGN.md §15).
//
// Under overload the cheapest place to shed work is before it queues: a
// rejected request costs one comparison; an admitted one costs queue slots,
// a batch seat, and worker time that pushes every later request's latency
// past its SLO. The controller is a plain threshold on the tenant's queue
// depth — deliberately stateless beyond counters, so admission never adds a
// random draw or clock read to the arrival path.
#pragma once

#include <cstdint>

#include "serve/serve_config.hpp"

namespace stellaris::serve {

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg) : cfg_(cfg) {}

  /// Decide one arrival given the tenant's current queued-request count.
  bool admit(std::size_t queued_now) {
    if (queued_now >= cfg_.max_queue) {
      ++rejected_;
      return false;
    }
    ++admitted_;
    return true;
  }

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  AdmissionConfig cfg_;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace stellaris::serve
