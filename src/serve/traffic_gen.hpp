// Seeded traffic generator for the serving tier (DESIGN.md §15).
//
// Two modes, both over the virtual clock so a run is a pure function of
// (config, seed):
//
//   open loop (Poisson): exponential interarrivals at `rate_per_s`; if
//     `burst_rate_per_s > 0` the rate switches to it inside
//     [burst_start_s, burst_end_s) — arrivals keep coming regardless of how
//     the service is doing, so overload shows up as queueing (and, past the
//     admission limit, rejections).
//
//   closed loop: `concurrency` clients each keep exactly one request in
//     flight; ServeEngine calls on_complete(client) when the response (or a
//     rejection) lands, and the client thinks for an exponential
//     `think_time_s` before the next issue — throughput self-limits to what
//     the service sustains.
//
// Generation stops once virtual time passes `duration_s`; in-flight work
// drains naturally. One Rng stream per generator, advanced only by arrival
// sampling, so request timelines are bit-identical across drivers.
#pragma once

#include <cstdint>
#include <functional>

#include "serve/serve_config.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace stellaris::serve {

class TrafficGen {
 public:
  /// `cb(client)` is invoked on the engine thread at each arrival instant.
  using Arrival = std::function<void(std::uint64_t client)>;

  TrafficGen(sim::Engine& engine, TrafficConfig cfg, std::uint64_t seed);

  /// Begin generating. Open loop schedules the first arrival; closed loop
  /// issues one request per client immediately.
  void start(Arrival cb);

  /// Closed loop: client finished (response or rejection) — schedule its
  /// next issue after think time. No-op in open-loop mode.
  void on_complete(std::uint64_t client);

  /// True once no further arrivals will ever be generated.
  bool done() const { return done_clients_ == total_clients_; }

  std::uint64_t issued() const { return issued_; }

 private:
  double rate_at(double t) const;
  double exp_sample(double rate);
  void schedule_open_arrival();
  void issue_closed(std::uint64_t client);

  sim::Engine& engine_;
  TrafficConfig cfg_;
  Rng rng_;
  Arrival cb_;
  std::uint64_t issued_ = 0;
  // Open loop counts as one "client"; closed loop has cfg.concurrency.
  std::uint64_t total_clients_ = 1;
  std::uint64_t done_clients_ = 0;
};

}  // namespace stellaris::serve
