// Training configuration for Stellaris and the baselines.
//
// Defaults mirror §VIII-A: decay d = 0.96, LR smoothness v = 3, truncation
// ρ = 1.0, 4 learner slots per V100, 1 actor per core, 50 training rounds,
// Table III hyper-parameters per algorithm.
#pragma once

#include <cstdint>
#include <string>

#include "fault/fault_plan.hpp"
#include "fault/retry_policy.hpp"
#include "rl/impact.hpp"
#include "rl/ppo.hpp"
#include "serverless/cluster.hpp"
#include "serverless/latency_model.hpp"
#include "sim/driver.hpp"
#include "util/error.hpp"

namespace stellaris::core {

enum class Algorithm { kPpo, kImpact };

const char* algorithm_name(Algorithm algo);

/// Gradient-aggregation policy at the parameter function. Stellaris is the
/// paper's contribution; the others are the Fig. 11(a) ablation baselines.
enum class AggregationMode {
  kStellaris,  ///< dynamic β_k bound + staleness-modulated LR (§V-C)
  kSoftsync,   ///< wait for a fixed count of gradients (Zhang et al. 2016)
  kSsp,        ///< stale-synchronous parallel: block fast learners (Ho 2013)
  kPureAsync,  ///< aggregate every gradient immediately, no control
};

const char* aggregation_mode_name(AggregationMode mode);

struct TrainConfig {
  std::string env_name = "Hopper";
  Algorithm algorithm = Algorithm::kPpo;

  // -- scale -----------------------------------------------------------------
  std::size_t num_actors = 8;
  std::size_t max_learners = 0;  ///< 0 = bounded only by cluster slots
  std::size_t rounds = 50;       ///< policy updates ("training rounds")
  std::size_t horizon = 128;     ///< timesteps sampled per env per invocation
  /// Environment copies stepped per actor invocation with one batched
  /// policy forward per step (DESIGN.md §17). An invocation samples
  /// horizon × envs_per_actor timesteps; 1 reproduces the scalar actor
  /// bit-for-bit.
  std::size_t envs_per_actor = 1;
  std::size_t trajs_per_learner = 4;  ///< actor batches merged per learner
  std::size_t network_width = 32;  ///< MLP hidden width (Table II scaled)

  // -- aggregation scheme (Fig. 11(a) ablation switch) ---------------------------
  AggregationMode aggregation = AggregationMode::kStellaris;
  std::size_t softsync_count = 4;  ///< Softsync: gradients per aggregation
  double ssp_bound = 3.0;          ///< SSP: max version lag before blocking

  // -- Stellaris knobs (§V, §VIII-A) -------------------------------------------
  double decay_d = 0.96;      ///< Eq. 3 staleness-threshold decay
  double staleness_floor = 1.0;  ///< lower bound on β_k (liveness; see
                                 ///< StalenessSchedule)
  double smooth_v = 3.0;      ///< Eq. 4 learning-rate smoothness root
  double ratio_rho = 1.0;     ///< Eq. 2 importance-sampling truncation
  bool enable_truncation = true;
  bool enable_staleness_lr = true;  ///< Eq. 4 on/off (extra ablation)

  // -- algorithm hyper-parameters (Table III) -----------------------------------
  // rl::PpoConfig / rl::ImpactConfig default to the paper's Table III
  // values. Those learning rates are calibrated for 4096-sample batches on
  // full-width Table II networks; this repo's scaled-down networks and
  // batches need proportionally larger steps to traverse the same learning
  // curve in 50 rounds, so TrainConfig's constructor rescales them (see
  // EXPERIMENTS.md "protocol scaling").
  rl::PpoConfig ppo;
  rl::ImpactConfig impact;

  TrainConfig() {
    ppo.lr = 2e-3;
    ppo.sgd_iters = 4;
    impact.lr = 2e-3;
    impact.sgd_iters = 2;
  }

  // -- infrastructure -----------------------------------------------------------
  serverless::ClusterSpec cluster = serverless::ClusterSpec::regular();
  serverless::LatencyModel latency;
  bool prewarm = true;

  // -- execution driver (DESIGN.md §14) -----------------------------------------
  /// Where invocation bodies execute: inline on the engine thread
  /// (kVirtual) or on a worker pool (kConcurrent). Results are
  /// byte-identical across drivers by construction; only wall-clock
  /// changes. `--driver=` in the benches.
  sim::DriverKind driver = sim::DriverKind::kVirtual;
  /// Worker-thread cap for the concurrent driver; 0 = one per hardware
  /// thread. `--driver-threads=` in the benches.
  std::size_t driver_threads = 0;

  // -- fault tolerance (src/fault) ------------------------------------------------
  /// Fault plan: probabilities/rates + optional scripted schedule. The
  /// default plan injects nothing and leaves results bit-identical to a
  /// faultless build.
  fault::FaultPlan faults;
  /// Retry policy applied (via invoke_retrying) to actor, learner, and
  /// parameter-function invocations when the fault plan is active.
  fault::RetryPolicy retry;
  /// Checkpoint the parameter state to the cache every k-th policy update
  /// (0 = only when the fault plan is active, every 10 updates; the
  /// checkpoint key is keys::kCheckpoint).
  std::size_t checkpoint_interval = 0;

  // -- evaluation -----------------------------------------------------------------
  std::size_t eval_episodes = 5;
  std::size_t eval_interval = 1;  ///< evaluate every k-th round

  std::uint64_t seed = 1;

  void validate() const;
};

}  // namespace stellaris::core
