#include "core/learner_update.hpp"

#include <algorithm>
#include <limits>

#include "nn/optimizer.hpp"
#include "rl/gae.hpp"
#include "rl/impact.hpp"
#include "rl/ppo.hpp"

namespace stellaris::core {

LearnerUpdate compute_learner_update(const TrainConfig& cfg,
                                     nn::ActorCritic& model,
                                     nn::ActorCritic& target,
                                     const std::vector<float>& pulled_params,
                                     rl::SampleBatch& batch) {
  const bool is_ppo = cfg.algorithm == Algorithm::kPpo;
  const double cap = cfg.enable_truncation
                         ? cfg.ratio_rho
                         : std::numeric_limits<double>::infinity();
  const double alpha0 = is_ppo ? cfg.ppo.lr : cfg.impact.lr;
  const std::size_t iters = std::max<std::size_t>(
      1, is_ppo ? cfg.ppo.sgd_iters : cfg.impact.sgd_iters);
  const double kl_stop =
      2.5 * (is_ppo ? cfg.ppo.kl_target : cfg.impact.kl_target);
  const double max_norm =
      is_ppo ? cfg.ppo.max_grad_norm : cfg.impact.max_grad_norm;
  const auto damp = static_cast<float>(is_ppo ? cfg.ppo.log_std_grad_scale
                                              : cfg.impact.log_std_grad_scale);

  if (is_ppo) {
    rl::compute_gae(batch, cfg.ppo.gamma, cfg.ppo.gae_lambda);
    rl::normalize_advantages(batch);
  }

  LearnerUpdate out;
  std::vector<float> local = pulled_params;
  nn::AdamOptimizer opt(alpha0);
  const auto [ls_off, ls_len] = model.log_std_span();
  std::vector<float> ls_before(ls_len);

  for (std::size_t e = 0; e < iters; ++e) {
    model.set_flat_params(local);
    model.zero_grad();
    out.stats = is_ppo ? rl::ppo_compute_gradients(model, batch, cfg.ppo, cap)
                       : rl::impact_compute_gradients(model, target, batch,
                                                      cfg.impact, cap);
    ++out.epochs_run;
    // Trust-region early stop once the sample KL overshoots.
    if (e > 0 && out.stats.kl > kl_stop) break;

    std::vector<float> grad = model.flat_grads();
    nn::clip_grad_norm(grad, max_norm);
    for (std::size_t i = 0; i < ls_len; ++i)
      ls_before[i] = local[ls_off + i];
    opt.step(local, grad);
    // Damp the log-std step (Adam is scale-invariant to gradient damping)
    // and keep σ bounded.
    for (std::size_t i = 0; i < ls_len; ++i) {
      float& v = local[ls_off + i];
      v = ls_before[i] + damp * (v - ls_before[i]);
      v = std::clamp(v, -2.5f, 0.0f);
    }
  }

  out.delta.resize(local.size());
  for (std::size_t i = 0; i < local.size(); ++i)
    out.delta[i] = pulled_params[i] - local[i];
  return out;
}

}  // namespace stellaris::core
