// Minimal leveled logger.
//
// Thread-safe (one mutex around the sink), with a process-wide level so the
// benchmark harness can silence training chatter. Messages are composed via
// streaming into a temporary, so disabled levels cost a branch.
//
// Each line is prefixed with an ISO-8601 UTC timestamp and the level tag:
//   [2026-08-06T12:34:56.789Z] [INFO] message
// The initial level comes from the STELLARIS_LOG_LEVEL environment variable
// (debug | info | warn | error | off, or the numeric values 0-4), read once
// at first use; set_level() overrides it afterwards.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "util/annotated_mutex.hpp"

namespace stellaris {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parse a level name ("debug", "info", "warn"/"warning", "error",
/// "off"/"none", case-insensitive, or a digit 0-4); nullopt on anything
/// else.
std::optional<LogLevel> try_parse_log_level(std::string_view s);

/// As try_parse_log_level, but `fallback` on unrecognized input.
LogLevel parse_log_level(std::string_view s, LogLevel fallback);

/// Current wall clock as "2026-08-06T12:34:56.789Z".
std::string log_timestamp();

/// Global log configuration. Defaults to kInfo on stderr, overridable via
/// STELLARIS_LOG_LEVEL.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) EXCLUDES(mu_);
  LogLevel level() const EXCLUDES(mu_);

  /// Emit a pre-formatted line at `level` (no-op below threshold).
  void write(LogLevel level, const std::string& msg) EXCLUDES(mu_);

 private:
  Logger();
  // Terminal leaf of the lock hierarchy: every subsystem may log while
  // holding its own lock, so nothing may be acquired while this is held.
  mutable Mutex mu_{"util/logger", lock_rank::kLogger};
  LogLevel level_ GUARDED_BY(mu_) = LogLevel::kInfo;
};

namespace detail {
/// RAII line builder: streams into a buffer, flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace stellaris

// The empty-then/else shape makes the macro a *complete* if-else, so a
// user's `else` after `if (x) LOG_INFO << ...;` binds to their own `if`
// instead of silently attaching to the macro's level check.
#define STELLARIS_LOG(severity)                                   \
  if (static_cast<int>(::stellaris::Logger::instance().level()) > \
      static_cast<int>(::stellaris::LogLevel::severity)) {        \
  } else                                                          \
    ::stellaris::detail::LogLine(::stellaris::LogLevel::severity)

#define LOG_DEBUG STELLARIS_LOG(kDebug)
#define LOG_INFO STELLARIS_LOG(kInfo)
#define LOG_WARN STELLARIS_LOG(kWarn)
#define LOG_ERROR STELLARIS_LOG(kError)
