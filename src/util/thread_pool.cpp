#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <latch>

namespace stellaris {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
    queue_.push(std::move(task));
  }
  tasks_enqueued_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!work_available()) cv_.wait(mu_);
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Static partitioning: one contiguous chunk per worker. The first
  // `rem` chunks carry one extra index so the split is as even as possible.
  const std::size_t chunks = std::min(n, size());
  const std::size_t per = n / chunks, rem = n % chunks;

  std::latch done(static_cast<std::ptrdiff_t>(chunks));
  Mutex err_mu("util/parallel-for-errors", lock_rank::kParallelForErrors);
  std::exception_ptr first_error;

  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = per + (c < rem ? 1 : 0);
    const std::size_t end = begin + len;
    enqueue([&fn, &done, &err_mu, &first_error, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        MutexLock lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      done.count_down();
    });
    begin = end;
  }
  done.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace stellaris
