# Empty dependencies file for stellaris_envs.
# This may be replaced when dependencies are built.
