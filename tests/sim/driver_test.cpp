// Unit tests for the execution drivers (sim/driver.hpp, DESIGN.md §14):
// job lifecycle, chained `after` dependencies, exception capture, drain,
// the per-invocation RNG stream keying, and the kernel-thread budget clamp.
#include "sim/driver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "tensor/kernel_config.hpp"
#include "util/rng.hpp"

namespace stellaris::sim {
namespace {

TEST(DriverKind, NamesAndParsing) {
  EXPECT_STREQ(driver_kind_name(DriverKind::kVirtual), "virtual");
  EXPECT_STREQ(driver_kind_name(DriverKind::kConcurrent), "concurrent");
  ASSERT_TRUE(parse_driver_kind("virtual").has_value());
  EXPECT_EQ(*parse_driver_kind("virtual"), DriverKind::kVirtual);
  ASSERT_TRUE(parse_driver_kind("concurrent").has_value());
  EXPECT_EQ(*parse_driver_kind("concurrent"), DriverKind::kConcurrent);
  EXPECT_FALSE(parse_driver_kind("threads").has_value());
  EXPECT_FALSE(parse_driver_kind("").has_value());
}

TEST(DriverKind, ResolveThreads) {
  EXPECT_EQ(resolve_driver_threads(4), 4u);
  EXPECT_EQ(resolve_driver_threads(1), 1u);
  // 0 = one per hardware thread; always at least one.
  EXPECT_GE(resolve_driver_threads(0), 1u);
}

TEST(InvocationStream, DeterministicAndDistinct) {
  const std::uint64_t a = invocation_stream(7, 42, 1);
  EXPECT_EQ(a, invocation_stream(7, 42, 1));
  // Any coordinate change must give a different stream: a retry re-samples
  // fresh randomness, and two invocations never share a stream.
  EXPECT_NE(a, invocation_stream(7, 42, 2));
  EXPECT_NE(a, invocation_stream(7, 43, 1));
  EXPECT_NE(a, invocation_stream(8, 42, 1));
  // The stream seeds a usable generator.
  Rng rng(a);
  (void)rng.next();
}

TEST(InlineDriver, RunsBodiesSynchronously) {
  Driver& d = inline_driver();
  EXPECT_STREQ(d.name(), "virtual");
  EXPECT_EQ(d.worker_threads(), 0u);
  int calls = 0;
  auto first = d.submit([&] { ++calls; });
  EXPECT_EQ(calls, 1);  // inline: body ran inside submit
  auto second = d.submit([&] { ++calls; }, first);
  EXPECT_EQ(calls, 2);
  Driver::join(first);
  Driver::join(second);
  d.drain();
}

TEST(InlineDriver, ExceptionRethrownAtJoin) {
  Driver& d = inline_driver();
  auto job = d.submit([] { throw std::runtime_error("body failed"); });
  EXPECT_THROW(Driver::join(job), std::runtime_error);
}

TEST(ConcurrentDriver, RunsAllBodies) {
  auto d = make_driver(DriverKind::kConcurrent, 4);
  EXPECT_STREQ(d->name(), "concurrent");
  EXPECT_EQ(d->worker_threads(), 4u);
  std::atomic<int> calls{0};
  std::vector<Driver::Job> jobs;
  for (int i = 0; i < 64; ++i)
    jobs.push_back(d->submit([&] { calls.fetch_add(1); }));
  for (const auto& j : jobs) Driver::join(j);
  EXPECT_EQ(calls.load(), 64);
}

TEST(ConcurrentDriver, AfterChainSerializesInSubmitOrder) {
  auto d = make_driver(DriverKind::kConcurrent, 4);
  // One chain through a single vector: without the `after` dependency the
  // pushes would race; with it the vector must come out in submit order.
  std::vector<int> order;
  Driver::Job prev;
  for (int i = 0; i < 32; ++i) {
    prev = d->submit([&order, i] { order.push_back(i); }, prev);
  }
  Driver::join(prev);
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(ConcurrentDriver, ExceptionRethrownAtJoin) {
  auto d = make_driver(DriverKind::kConcurrent, 2);
  auto ok = d->submit([] {});
  auto bad = d->submit([] { throw std::runtime_error("boom"); });
  Driver::join(ok);
  EXPECT_THROW(Driver::join(bad), std::runtime_error);
  d->drain();
}

TEST(ConcurrentDriver, AbandonedJobsAreReapedByDrain) {
  auto d = make_driver(DriverKind::kConcurrent, 2);
  std::atomic<int> calls{0};
  for (int i = 0; i < 16; ++i) d->submit([&] { calls.fetch_add(1); });
  d->drain();  // never joined individually — the fault-plane abandon path
  EXPECT_EQ(calls.load(), 16);
}

TEST(ConcurrentDriver, SingleThreadStillCompletesChains) {
  auto d = make_driver(DriverKind::kConcurrent, 1);
  std::vector<int> order;
  Driver::Job prev;
  for (int i = 0; i < 8; ++i)
    prev = d->submit([&order, i] { order.push_back(i); }, prev);
  Driver::join(prev);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(DriverThreadBudget, ClampsOnOversubscription) {
  const std::size_t saved = ops::kernel_threads();
  // 8 kernel threads × 4 driver threads on a "16-hardware-thread" machine
  // oversubscribes; the budget clamps kernels to 16/4 = 4.
  ops::set_kernel_threads(8);
  EXPECT_EQ(ops::apply_driver_thread_budget(4, 16), 4u);
  EXPECT_EQ(ops::kernel_threads(), 4u);
  ops::set_kernel_threads(saved);
}

TEST(DriverThreadBudget, NoClampWhenBudgetFits) {
  const std::size_t saved = ops::kernel_threads();
  ops::set_kernel_threads(2);
  EXPECT_EQ(ops::apply_driver_thread_budget(4, 16), 2u);
  EXPECT_EQ(ops::kernel_threads(), 2u);
  // driver_threads <= 1 (the virtual driver) never clamps.
  ops::set_kernel_threads(64);
  EXPECT_EQ(ops::apply_driver_thread_budget(1, 16), 64u);
  EXPECT_EQ(ops::kernel_threads(), 64u);
  ops::set_kernel_threads(saved);
}

TEST(DriverThreadBudget, NeverClampsBelowOne) {
  const std::size_t saved = ops::kernel_threads();
  ops::set_kernel_threads(8);
  EXPECT_EQ(ops::apply_driver_thread_budget(32, 16), 1u);
  EXPECT_EQ(ops::kernel_threads(), 1u);
  ops::set_kernel_threads(saved);
}

}  // namespace
}  // namespace stellaris::sim
