// Distributed Cache — the in-memory key-value buffer at the center of the
// paper's workflow (§IV): actors publish serialized trajectory batches,
// learner functions publish gradients, and the parameter function publishes
// policy model weights; everyone else polls or blocks for them.
//
// This is our Redis substitute: a thread-safe versioned KV store with
//  - monotonically increasing per-key versions (so pollers can wait for
//    "anything newer than what I last saw"),
//  - blocking reads with timeout (condition-variable based, for the real
//    multi-threaded driver),
//  - prefix scans (gradient / trajectory inbox patterns like "grad/*"),
//  - byte and hit/miss accounting that feeds the data-passing latency model.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace stellaris::cache {

using Bytes = std::vector<std::uint8_t>;

/// Value + metadata returned by reads.
struct CacheValue {
  Bytes data;
  std::uint64_t version = 0;  ///< per-key write counter, starts at 1
};

/// Aggregate counters (monotonic since construction or reset_stats()).
struct CacheStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t erases = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

class DistributedCache {
 public:
  DistributedCache();
  DistributedCache(const DistributedCache&) = delete;
  DistributedCache& operator=(const DistributedCache&) = delete;

  /// Store (replacing any prior value); returns the new version.
  std::uint64_t put(const std::string& key, Bytes value);

  /// Non-blocking read.
  std::optional<CacheValue> get(const std::string& key) const;

  /// Read that throws CacheError on miss — for keys the protocol guarantees.
  CacheValue get_or_throw(const std::string& key) const;

  /// Block until `key` exists with version > `min_version`, or timeout.
  /// Returns nullopt on timeout. min_version = 0 accepts any value.
  std::optional<CacheValue> get_blocking(const std::string& key,
                                         std::uint64_t min_version,
                                         std::chrono::milliseconds timeout);

  /// Virtual-time deadline overload for simulation-driven callers. The
  /// event loop is single-threaded, so no other event can publish the key
  /// while this call "waits": the wait collapses deterministically to an
  /// immediate hit (the key is already satisfied) or a miss accounted as a
  /// timeout at `engine.now() + timeout_s` — no wall-clock sleep, no
  /// nondeterminism, and the virtual clock never advances. Callers that
  /// need to genuinely wait across events use get_async.
  std::optional<CacheValue> get_blocking(const std::string& key,
                                         std::uint64_t min_version,
                                         sim::Engine& engine,
                                         double timeout_s);

  using AsyncCallback = std::function<void(std::optional<CacheValue>)>;

  /// Event-driven wait: fires `cb` (via `engine`, in virtual time) as soon
  /// as `key` reaches a version > `min_version` — immediately (same
  /// timestamp, later event) if already satisfied — or with nullopt at the
  /// virtual deadline `engine.now() + timeout_s`. timeout_s <= 0 means no
  /// deadline (the waiter is dropped at clear()).
  void get_async(const std::string& key, std::uint64_t min_version,
                 sim::Engine& engine, double timeout_s, AsyncCallback cb);

  /// Async waiters currently registered (tests / diagnostics).
  std::size_t pending_waiters() const;

  bool contains(const std::string& key) const;

  /// Current version of a key (0 if absent).
  std::uint64_t version(const std::string& key) const;

  /// Remove a key; returns whether it existed.
  bool erase(const std::string& key);

  /// All keys starting with `prefix`, in lexicographic order.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  /// Remove every key with the prefix; returns count removed.
  std::size_t erase_prefix(const std::string& prefix);

  std::size_t num_keys() const;
  /// Total payload bytes currently resident.
  std::size_t resident_bytes() const;

  CacheStats stats() const;
  void reset_stats();

  void clear();

 private:
  struct Entry {
    Bytes data;
    std::uint64_t version = 0;
  };
  /// One registered get_async call awaiting a put (or its deadline).
  struct Waiter {
    std::uint64_t id = 0;
    std::string key;
    std::uint64_t min_version = 0;
    sim::Engine* engine = nullptr;
    AsyncCallback cb;
    sim::Engine::CancelHandle deadline;  ///< null when timeout_s <= 0
  };

  /// Account a hit and return the entry's value. Caller holds mu_.
  CacheValue read_entry_locked(const Entry& entry);
  /// Deadline event for an async waiter: drop it and fire cb(nullopt).
  void expire_waiter(std::uint64_t id);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Entry> store_;
  std::vector<Waiter> waiters_;
  std::uint64_t next_waiter_id_ = 0;
  std::size_t resident_bytes_ = 0;
  mutable CacheStats stats_;

  // Process-wide observability mirrors of the per-instance stats (resolved
  // once at construction; updates are relaxed atomics).
  obs::Counter* m_puts_;
  obs::Counter* m_gets_;
  obs::Counter* m_hits_;
  obs::Counter* m_misses_;
  obs::Counter* m_erases_;
  obs::Counter* m_bytes_written_;
  obs::Counter* m_bytes_read_;
  obs::Counter* m_blocked_timeouts_;
  obs::FixedHistogram* m_blocked_wait_ms_;
  obs::Gauge* m_resident_bytes_;
  obs::Counter* m_async_waits_;
  obs::Counter* m_async_timeouts_;
};

}  // namespace stellaris::cache
