#include "envs/vec_env.hpp"

#include "util/error.hpp"

namespace stellaris::envs {

VecEnv::VecEnv(const std::string& name, std::size_t n, std::uint64_t seed,
               std::size_t threads)
    : rng_(seed) {
  STELLARIS_CHECK_MSG(n > 0, "VecEnv needs at least one environment");
  envs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) envs_.push_back(make_env(name));
  spec_ = envs_.front()->spec();
  env_seeds_.resize(n);
  running_returns_.assign(n, 0.0);
  if (threads > 0) pool_ = std::make_unique<ThreadPool>(threads);
}

Tensor VecEnv::reset_all() {
  Tensor obs({envs_.size(), spec_.obs.flat_dim});
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    env_seeds_[i] = rng_.next();
    const auto o = envs_[i]->reset(env_seeds_[i]);
    std::copy(o.begin(), o.end(), obs.row(i).begin());
    running_returns_[i] = 0.0;
  }
  return obs;
}

template <typename StepFn>
VecEnv::StepBatch VecEnv::step_impl(const StepFn& fn) {
  const std::size_t n = envs_.size();
  StepBatch out;
  out.obs = Tensor({n, spec_.obs.flat_dim});
  out.rewards.resize(n);
  out.dones.assign(n, false);
  std::vector<StepResult> results(n);

  // Auto-reset seeds must come from the single shared stream, so draw them
  // up-front (deterministically) before any parallel work.
  std::vector<std::uint64_t> reset_seeds(n);
  for (std::size_t i = 0; i < n; ++i) reset_seeds[i] = rng_.next();

  auto step_one = [&](std::size_t i) {
    results[i] = fn(i);
    if (results[i].done)
      results[i].obs = envs_[i]->reset(reset_seeds[i]);
  };
  if (pool_) {
    pool_->parallel_for(n, step_one);
  } else {
    for (std::size_t i = 0; i < n; ++i) step_one(i);
  }

  for (std::size_t i = 0; i < n; ++i) {
    out.rewards[i] = results[i].reward;
    out.dones[i] = results[i].done;
    running_returns_[i] += results[i].reward;
    if (results[i].done) {
      out.episode_returns.push_back(running_returns_[i]);
      running_returns_[i] = 0.0;
    }
    std::copy(results[i].obs.begin(), results[i].obs.end(),
              out.obs.row(i).begin());
  }
  total_steps_ += n;
  return out;
}

VecEnv::StepBatch VecEnv::step(const Tensor& actions) {
  STELLARIS_CHECK_MSG(actions.rank() == 2 && actions.dim(0) == envs_.size() &&
                          actions.dim(1) == spec_.act_dim,
                      "VecEnv::step action shape "
                          << shape_str(actions.shape()));
  return step_impl(
      [&](std::size_t i) { return envs_[i]->step(actions.row(i)); });
}

VecEnv::StepBatch VecEnv::step_discrete(
    const std::vector<std::size_t>& actions) {
  STELLARIS_CHECK_MSG(actions.size() == envs_.size(),
                      "VecEnv::step_discrete action count mismatch");
  return step_impl(
      [&](std::size_t i) { return envs_[i]->step_discrete(actions[i]); });
}

}  // namespace stellaris::envs
