// analyze_tree: run all four passes over a tree; baseline-file parsing.
#include "analyzer.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace stellaris::analyze {

std::vector<Finding> analyze_tree(const std::string& root,
                                  const std::string& layers_path) {
  Project project = load_project(root, {"src", "tools", "bench"});

  std::vector<Finding> findings;
  LayerGraph graph = parse_layers_file(layers_path);
  int config_errors = 0;
  for (const auto& err : graph.errors)
    findings.push_back({"layer-dag", layers_path, 0,
                        "config:" + std::to_string(config_errors++), err});
  if (graph.errors.empty()) check_layers(project, graph, findings);

  std::string design;
  {
    std::ifstream in(root + "/DESIGN.md");
    std::ostringstream buf;
    buf << in.rdbuf();
    design = buf.str();
  }
  check_locks(project, design, findings);
  check_purity(project, findings);
  check_ledger(project, findings);

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.id() < b.id();
                   });
  return findings;
}

Baseline parse_baseline_file(const std::string& path) {
  Baseline baseline;
  std::ifstream in(path);
  if (!in) {
    baseline.errors.push_back("cannot open baseline file: " + path);
    return baseline;
  }
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::size_t a = raw.find_first_not_of(" \t\r");
    if (a == std::string::npos) continue;
    const std::size_t b = raw.find_last_not_of(" \t\r");
    const std::string id = raw.substr(a, b - a + 1);
    // An id is "<rule> <file> <key>" — three space-separated parts.
    if (std::count(id.begin(), id.end(), ' ') != 2) {
      baseline.errors.push_back(path + ":" + std::to_string(line) +
                                ": expected `<rule> <file> <key>`");
      continue;
    }
    if (!baseline.entries.emplace(id, line).second)
      baseline.errors.push_back(path + ":" + std::to_string(line) +
                                ": duplicate entry");
  }
  return baseline;
}

}  // namespace stellaris::analyze
