// Telemetry bit-identity gate (CI: telemetry-gate job).
//
// The observability layer's core contract is that it only *observes*: with
// trace + ledger + time-series capture all enabled, a training run must
// produce bit-identical results to the same run with capture off. This gate
// enforces the contract end-to-end:
//
//   1. a clean fig06-style small run (Hopper) off vs fully on,
//   2. a faulty run (crashes, stragglers, a scripted VM reclaim) off vs on —
//      the fault/retry/reclaim paths emit the trickiest settle-time events,
//   3. the recorded ledger is analyzed in-process and the report must be
//      self-consistent: per-stage critical-path times sum to the total
//      virtual run time, and the wasted-cost attribution matches the fault
//      subsystem's own counters,
//   4. a summary CSV is written at %.6g (coarse enough to dodge libm drift
//      across toolchains) for diffing against the tracked baseline
//      bench/baselines/telemetry_gate.csv.
//
// Flags:
//   --csv-out=<file>     summary CSV (default: telemetry_gate.csv)
//   --ledger-out=<file>  keep the faulty run's ledger (CI feeds it to
//                        stellaris_report as a smoke test)
//
// Exit code 0 = all gates hold; 1 = a mismatch, with details on stderr.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "tools/report/ledger_analysis.hpp"

using namespace stellaris;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++g_failures;
  }
}

void check_eq_u64(std::uint64_t a, std::uint64_t b, const char* what) {
  if (a != b) {
    std::fprintf(stderr, "FAIL: %s (%llu != %llu)\n", what,
                 static_cast<unsigned long long>(a),
                 static_cast<unsigned long long>(b));
    ++g_failures;
  }
}

void check_bits(double a, double b, const char* what) {
  // Bit-identity gate: exact equality, not a tolerance.
  if (!(a == b)) {
    std::fprintf(stderr, "FAIL: %s (%.17g != %.17g)\n", what, a, b);
    ++g_failures;
  }
}

void check_near(double a, double b, double tol, const char* what) {
  if (!(std::fabs(a - b) <= tol)) {
    std::fprintf(stderr, "FAIL: %s (%.17g vs %.17g, tol %g)\n", what, a, b,
                 tol);
    ++g_failures;
  }
}

core::TrainConfig small_config() {
  // Reduced fig06 shape: Hopper, small net, few rounds — seconds to run.
  core::TrainConfig cfg;
  cfg.env_name = "Hopper";
  cfg.rounds = 8;
  cfg.num_actors = 4;
  cfg.horizon = 32;
  cfg.trajs_per_learner = 2;
  cfg.network_width = 8;
  cfg.eval_episodes = 1;
  cfg.seed = 7;
  return cfg;
}

core::TrainConfig faulty_config() {
  auto cfg = small_config();
  cfg.faults.config.crash_prob = 0.15;
  cfg.faults.config.straggler_prob = 0.1;
  cfg.faults.config.straggler_mult = 3.0;
  // A scripted reclaim kills in-flight invocations mid-run: their spans and
  // ledger events must settle at the kill, not at the predicted end.
  cfg.faults.schedule.push_back({0.2, fault::FaultKind::kVmReclaim, -1, 0.0});
  return cfg;
}

/// Run with every recorder installed; recorders outlive the run so the
/// caller can inspect what was captured.
core::TrainResult run_instrumented(const core::TrainConfig& cfg,
                                   obs::TraceRecorder& tr,
                                   obs::LedgerRecorder& led,
                                   obs::TimeSeriesRecorder& ts) {
  obs::install_trace(&tr);
  obs::install_ledger(&led);
  obs::install_timeseries(&ts);
  auto result = core::run_training(cfg);
  obs::install_trace(nullptr);
  obs::install_ledger(nullptr);
  obs::install_timeseries(nullptr);
  return result;
}

void expect_identical(const core::TrainResult& off,
                      const core::TrainResult& on, const char* label) {
  std::string p(label);
  check_eq_u64(off.rounds.size(), on.rounds.size(),
               (p + ": round count").c_str());
  const std::size_t n = std::min(off.rounds.size(), on.rounds.size());
  for (std::size_t i = 0; i < n; ++i) {
    check_bits(off.rounds[i].time_s, on.rounds[i].time_s,
               (p + ": round time_s").c_str());
    check_bits(off.rounds[i].reward, on.rounds[i].reward,
               (p + ": round reward").c_str());
    check_eq_u64(off.rounds[i].group_size, on.rounds[i].group_size,
                 (p + ": round group_size").c_str());
  }
  check_bits(off.total_time_s, on.total_time_s,
             (p + ": total_time_s").c_str());
  check_bits(off.total_cost_usd, on.total_cost_usd,
             (p + ": total_cost_usd").c_str());
  check_bits(off.final_reward, on.final_reward,
             (p + ": final_reward").c_str());
  check_eq_u64(off.faults.failed_invocations, on.faults.failed_invocations,
               (p + ": failed_invocations").c_str());
  check_eq_u64(off.faults.retries, on.faults.retries,
               (p + ": retries").c_str());
  check_bits(off.faults.wasted_cost_usd, on.faults.wasted_cost_usd,
             (p + ": wasted_cost_usd").c_str());
}

void check_report(const report::RunReport& rep,
                  const core::TrainResult& result, const char* label) {
  std::string p(label);
  // Critical-path times must tile the whole run: the sweep attributes every
  // elementary interval to exactly one stage, so only telescoped-sum float
  // rounding may separate the two.
  check_near(rep.stages.sum(), rep.t_end,
             1e-6 * std::max(1.0, rep.t_end),
             (p + ": stage sum == t_end").c_str());
  check_near(rep.stages.total, rep.t_end, 1e-6 * std::max(1.0, rep.t_end),
             (p + ": stages.total == t_end").c_str());
  check_eq_u64(rep.rounds, result.rounds.size(),
               (p + ": round events").c_str());
  // Fault accounting from invoke events must match the simulator's own
  // CostMeter (near: float-sum order differs between the two).
  check_eq_u64(rep.failed_invocations, result.faults.failed_invocations,
               (p + ": failed invocations").c_str());
  check_eq_u64(rep.retries, result.faults.retries, (p + ": retries").c_str());
  check_eq_u64(rep.giveups, result.faults.giveups, (p + ": giveups").c_str());
  check_eq_u64(rep.reclaims, result.faults.vm_reclaims,
               (p + ": reclaims").c_str());
  check_near(rep.wasted_cost_usd, result.faults.wasted_cost_usd, 1e-9,
             (p + ": wasted cost").c_str());
  check_near(rep.wasted_seconds, result.faults.wasted_seconds, 1e-9,
             (p + ": wasted seconds").c_str());
  check_near(rep.total_cost_usd, result.total_cost_usd, 1e-9,
             (p + ": total cost").c_str());
  check(rep.t_end > 0.0, (p + ": t_end > 0").c_str());
  check(!rep.staleness.empty(), (p + ": staleness per version").c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path = "telemetry_gate.csv";
  std::string ledger_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--csv-out=", 0) == 0) csv_path = arg.substr(10);
    else if (arg.rfind("--ledger-out=", 0) == 0) ledger_path = arg.substr(13);
  }

  // Driver flags (--driver=, --driver-threads=): the gate's identity checks
  // must hold under either execution driver, so CI runs it both ways.
  auto clean_cfg = small_config();
  bench::apply_driver_args(clean_cfg, argc, argv);
  auto faulty_cfg = faulty_config();
  bench::apply_driver_args(faulty_cfg, argc, argv);

  // 1. Clean run, capture off vs fully on.
  const auto clean_off = core::run_training(clean_cfg);
  obs::TraceRecorder clean_tr;
  obs::LedgerRecorder clean_led;
  obs::TimeSeriesRecorder clean_ts(1.0);
  const auto clean_on =
      run_instrumented(clean_cfg, clean_tr, clean_led, clean_ts);
  expect_identical(clean_off, clean_on, "clean");
  check(clean_led.size() > 0, "clean: ledger captured events");
  check(!clean_ts.series_names().empty(), "clean: time series captured");

  // 2. Faulty run (exercises crash/straggler/reclaim settle paths).
  const auto faulty_off = core::run_training(faulty_cfg);
  obs::TraceRecorder faulty_tr;
  obs::LedgerRecorder faulty_led;
  obs::TimeSeriesRecorder faulty_ts(1.0);
  const auto faulty_on =
      run_instrumented(faulty_cfg, faulty_tr, faulty_led, faulty_ts);
  expect_identical(faulty_off, faulty_on, "faulty");
  check(faulty_on.faults.failed_invocations > 0,
        "faulty: faults were injected");

  // 3. In-process report self-consistency on both captured ledgers.
  const auto clean_reports = report::analyze_ledger(clean_led.lines());
  check(clean_reports.size() == 1, "clean: one run in ledger");
  if (!clean_reports.empty())
    check_report(clean_reports.back(), clean_on, "clean report");
  const auto faulty_reports = report::analyze_ledger(faulty_led.lines());
  check(faulty_reports.size() == 1, "faulty: one run in ledger");
  if (!faulty_reports.empty()) {
    check_report(faulty_reports.back(), faulty_on, "faulty report");
    check(!faulty_reports.back().wasted.empty(),
          "faulty report: wasted-cost attribution present");
  }

  if (!ledger_path.empty()) {
    if (!faulty_led.write_file(ledger_path)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", ledger_path.c_str());
      ++g_failures;
    }
  }

  // 4. Summary CSV at %.6g for the tracked-baseline diff.
  {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", csv_path.c_str());
      ++g_failures;
    } else {
      char buf[64];
      auto row = [&](const char* metric, double v) {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        csv << metric << "," << buf << "\n";
      };
      csv << "metric,value\n";
      row("clean_rounds", static_cast<double>(clean_on.rounds.size()));
      row("clean_total_time_s", clean_on.total_time_s);
      row("clean_total_cost_usd", clean_on.total_cost_usd);
      row("clean_final_reward", clean_on.final_reward);
      row("clean_ledger_events", static_cast<double>(clean_led.size()));
      row("faulty_rounds", static_cast<double>(faulty_on.rounds.size()));
      row("faulty_total_time_s", faulty_on.total_time_s);
      row("faulty_total_cost_usd", faulty_on.total_cost_usd);
      row("faulty_failed_invocations",
          static_cast<double>(faulty_on.faults.failed_invocations));
      row("faulty_retries", static_cast<double>(faulty_on.faults.retries));
      row("faulty_wasted_cost_usd", faulty_on.faults.wasted_cost_usd);
      row("faulty_ledger_events", static_cast<double>(faulty_led.size()));
    }
  }

  if (g_failures) {
    std::fprintf(stderr, "telemetry_gate: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("telemetry_gate: all gates hold (results bit-identical with "
              "telemetry on/off; report self-consistent)\n");
  return 0;
}
