#include "core/truncation.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace stellaris::core {
namespace {

TEST(Truncation, Eq2TakesMinThenClips) {
  // R' = min(|min_i(r_i)|, ρ).
  EXPECT_DOUBLE_EQ(global_truncated_ratio({1.2, 0.8, 1.5}, 1.0), 0.8);
  EXPECT_DOUBLE_EQ(global_truncated_ratio({1.2, 1.4, 1.5}, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(global_truncated_ratio({0.5}, 1.0), 0.5);
}

TEST(Truncation, AbsoluteValueOfMin) {
  // |min_i(...)| per Eq. 2 — a (pathological) negative ratio is folded.
  EXPECT_DOUBLE_EQ(global_truncated_ratio({-0.5, 2.0}, 1.0), 0.5);
}

TEST(Truncation, RhoCapsFromAbove) {
  EXPECT_DOUBLE_EQ(global_truncated_ratio({3.0, 4.0}, 0.7), 0.7);
}

TEST(Truncation, SingleLearnerDegeneratesToLocalClip) {
  EXPECT_DOUBLE_EQ(global_truncated_ratio({2.5}, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(global_truncated_ratio({0.9}, 1.0), 0.9);
}

TEST(Truncation, ScalesNeverExceedOne) {
  const auto scales = truncation_scales({0.8, 1.0, 1.3, 2.0}, 1.0);
  for (double s : scales) {
    EXPECT_LE(s, 1.0);
    EXPECT_GT(s, 0.0);
  }
}

TEST(Truncation, ConservativeLearnerKeepsFullWeight) {
  // The learner holding the group minimum (if within ρ) is not rescaled.
  const auto scales = truncation_scales({0.8, 1.2}, 1.0);
  EXPECT_DOUBLE_EQ(scales[0], 1.0);
  EXPECT_NEAR(scales[1], 0.8 / 1.2, 1e-12);
}

TEST(Truncation, DriftedLearnersPulledToGlobalRatio) {
  const auto scales = truncation_scales({1.0, 2.0, 4.0}, 1.0);
  EXPECT_DOUBLE_EQ(scales[0], 1.0);
  EXPECT_DOUBLE_EQ(scales[1], 0.5);
  EXPECT_DOUBLE_EQ(scales[2], 0.25);
}

TEST(Truncation, UniformGroupIsUntouched) {
  const auto scales = truncation_scales({1.0, 1.0, 1.0}, 1.0);
  for (double s : scales) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(Truncation, EmptyGroupThrows) {
  EXPECT_THROW(global_truncated_ratio({}, 1.0), Error);
}

TEST(Truncation, NonPositiveRhoThrows) {
  EXPECT_THROW(global_truncated_ratio({1.0}, 0.0), Error);
  EXPECT_THROW(global_truncated_ratio({1.0}, -1.0), Error);
}

// Property sweep over ρ (the Fig. 13(c) axis): R' ≤ ρ always, and scales
// shrink monotonically as ρ tightens.
class RhoSweep : public ::testing::TestWithParam<double> {};

TEST_P(RhoSweep, GlobalRatioBoundedByRho) {
  const double rho = GetParam();
  const std::vector<double> ratios = {0.7, 0.95, 1.1, 1.6};
  EXPECT_LE(global_truncated_ratio(ratios, rho), rho + 1e-12);
  for (double s : truncation_scales(ratios, rho)) EXPECT_LE(s, 1.0);
}

INSTANTIATE_TEST_SUITE_P(PaperRange, RhoSweep,
                         ::testing::Values(0.6, 0.8, 1.0, 1.2));

}  // namespace
}  // namespace stellaris::core
