file(REMOVE_RECURSE
  "CMakeFiles/stellaris_cache.dir/distributed_cache.cpp.o"
  "CMakeFiles/stellaris_cache.dir/distributed_cache.cpp.o.d"
  "libstellaris_cache.a"
  "libstellaris_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellaris_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
