// Execution-driver bench (DESIGN.md §14): wall-clock of the concurrent
// driver vs the virtual driver on fig06- and fig10-shaped workloads, at
// 1/2/4/8 driver threads — plus a hard bit-identity assert between every
// configuration, because a speedup that changed the results would be a bug,
// not a win.
//
// Flags:
//   --json=<path>        machine-readable results (schema
//                        stellaris-driver-bench-v1)
//   --compare=<path>     baseline JSON; compute throughput ratios
//   --max-regress=<x>    fail (exit 1) if any config is > x times slower
//                        than the baseline
//   --scale=smoke|bench  workload size (default bench; smoke for CI)
//
// Speedup scales with available cores: the per-entry `speedup_vs_virtual`
// is only meaningful relative to `host_cores` recorded in the same file —
// on a 1-core host the concurrent driver cannot beat the virtual one.
// Wall-clock timing is inherently nondeterministic; the results the runs
// produce are not, and the identity assert proves it on every invocation.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "util/mini_json.hpp"

using namespace stellaris;

namespace {

struct RunOutcome {
  core::TrainResult result;
  double wall_s = 0.0;
};

struct Entry {
  std::string workload;  ///< fig06_async | fig10_minions_sync
  std::string driver;    ///< "virtual" or "concurrent"
  std::size_t threads = 0;
  double wall_s = 0.0;
  double speedup_vs_virtual = 1.0;
  double throughput = 0.0;  ///< 1 / wall_s — higher is better, like the
                            ///< kernel bench, so baselines share semantics
};

int g_failures = 0;

void check_bits(double a, double b, const char* workload, const char* what) {
  if (!(a == b)) {
    std::fprintf(stderr,
                 "FAIL: %s: %s differs across drivers (%.17g != %.17g)\n",
                 workload, what, a, b);
    ++g_failures;
  }
}

void expect_identical(const core::TrainResult& a, const core::TrainResult& b,
                      const char* workload) {
  if (a.rounds.size() != b.rounds.size()) {
    std::fprintf(stderr, "FAIL: %s: round counts differ (%zu != %zu)\n",
                 workload, a.rounds.size(), b.rounds.size());
    ++g_failures;
    return;
  }
  check_bits(a.total_time_s, b.total_time_s, workload, "total_time_s");
  check_bits(a.total_cost_usd, b.total_cost_usd, workload, "total_cost_usd");
  check_bits(a.final_reward, b.final_reward, workload, "final_reward");
  check_bits(a.best_reward, b.best_reward, workload, "best_reward");
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    check_bits(a.rounds[i].time_s, b.rounds[i].time_s, workload,
               "round time_s");
    check_bits(a.rounds[i].kl, b.rounds[i].kl, workload, "round kl");
    if (a.rounds[i].evaluated && b.rounds[i].evaluated)
      check_bits(a.rounds[i].reward, b.rounds[i].reward, workload,
                 "round reward");
  }
}

template <typename Fn>
RunOutcome timed(Fn run) {
  RunOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  out.result = run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

core::TrainConfig fig06_config(bool smoke) {
  auto cfg = bench::base_config("Hopper", smoke ? 6 : 20, 1);
  if (smoke) {
    cfg.num_actors = 4;
    cfg.horizon = 32;
    cfg.network_width = 8;
    cfg.trajs_per_learner = 2;
    cfg.eval_episodes = 1;
  }
  return cfg;
}

RunOutcome run_fig06(bool smoke, sim::DriverKind kind, std::size_t threads) {
  auto cfg = fig06_config(smoke);
  cfg.driver = kind;
  cfg.driver_threads = threads;
  return timed([&] { return core::run_training(cfg); });
}

RunOutcome run_fig10(bool smoke, sim::DriverKind kind, std::size_t threads) {
  // fig10 shape: the MinionsRL-like sync baseline (central learner, waves
  // of serverless actors) — the barrier phases are where the sync trainer
  // fans bodies out.
  baselines::SyncConfig cfg;
  cfg.base = fig06_config(smoke);
  cfg.base.rounds = smoke ? 4 : 10;
  cfg.base.driver = kind;
  cfg.base.driver_threads = threads;
  cfg.variant = baselines::SyncVariant::kMinionsLike;
  return timed([&] { return baselines::run_sync_training(cfg); });
}

void write_json(const std::string& path, const std::vector<Entry>& entries) {
  std::ofstream os(path);
  os << "{\n  \"schema\": \"stellaris-driver-bench-v1\",\n"
     << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
     << "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"workload\": \"%s\", \"driver\": \"%s\", "
                  "\"threads\": %zu, \"wall_s\": %.4f, "
                  "\"speedup_vs_virtual\": %.3f, \"value\": %.4f}",
                  e.workload.c_str(), e.driver.c_str(), e.threads, e.wall_s,
                  e.speedup_vs_virtual, e.throughput);
    os << buf << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

/// Worst current/baseline throughput ratio over configs present in both.
double compare_to_baseline(const std::string& path,
                           const std::vector<Entry>& entries) {
  std::ifstream is(path);
  if (!is.good()) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    ++g_failures;
    return 1.0;
  }
  std::stringstream ss;
  ss << is.rdbuf();
  const minijson::Value root = minijson::parse(ss.str());
  double worst = std::numeric_limits<double>::infinity();
  for (const minijson::Value& e : root.at("entries").arr) {
    const std::string& workload = e.at("workload").string();
    const std::string& driver = e.at("driver").string();
    const auto threads =
        static_cast<std::size_t>(e.at("threads").number());
    const double base = e.at("value").number();
    if (base <= 0.0) continue;
    for (const auto& r : entries) {
      if (r.workload != workload || r.driver != driver ||
          r.threads != threads)
        continue;
      const double ratio = r.throughput / base;
      std::printf("  vs baseline  %-18s %-10s t=%zu %8.2fx\n",
                  workload.c_str(), driver.c_str(), threads, ratio);
      worst = std::min(worst, ratio);
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out, baseline;
  double max_regress = 0.0;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_out = arg.substr(7);
    else if (arg.rfind("--compare=", 0) == 0) baseline = arg.substr(10);
    else if (arg.rfind("--max-regress=", 0) == 0)
      max_regress = std::stod(arg.substr(14));
    else if (arg == "--scale=smoke") smoke = true;
    else if (arg == "--scale=bench") smoke = false;
  }

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::vector<Entry> entries;

  struct Workload {
    const char* name;
    RunOutcome (*run)(bool, sim::DriverKind, std::size_t);
  };
  const Workload workloads[] = {{"fig06_async", &run_fig06},
                                {"fig10_minions_sync", &run_fig10}};

  std::printf("%-18s %-10s %7s %9s %9s\n", "workload", "driver", "threads",
              "wall_s", "speedup");
  for (const auto& w : workloads) {
    const auto virt = w.run(smoke, sim::DriverKind::kVirtual, 0);
    entries.push_back({w.name, "virtual", 0, virt.wall_s, 1.0,
                       virt.wall_s > 0.0 ? 1.0 / virt.wall_s : 0.0});
    std::printf("%-18s %-10s %7d %9.3f %8.2fx\n", w.name, "virtual", 0,
                virt.wall_s, 1.0);
    for (const std::size_t t : thread_counts) {
      const auto conc = w.run(smoke, sim::DriverKind::kConcurrent, t);
      expect_identical(virt.result, conc.result, w.name);
      const double speedup =
          conc.wall_s > 0.0 ? virt.wall_s / conc.wall_s : 0.0;
      entries.push_back({w.name, "concurrent", t, conc.wall_s, speedup,
                         conc.wall_s > 0.0 ? 1.0 / conc.wall_s : 0.0});
      std::printf("%-18s %-10s %7zu %9.3f %8.2fx\n", w.name, "concurrent", t,
                  conc.wall_s, speedup);
    }
  }

  if (!json_out.empty()) {
    write_json(json_out, entries);
    std::printf("wrote %s\n", json_out.c_str());
  }
  if (!baseline.empty() && max_regress > 0.0) {
    const double worst = compare_to_baseline(baseline, entries);
    if (worst * max_regress < 1.0) {
      std::printf("FAIL: worst config is %.2fx of baseline (limit %.2fx)\n",
                  worst, 1.0 / max_regress);
      ++g_failures;
    } else {
      std::printf("baseline check passed: worst ratio %.2fx (limit %.2fx)\n",
                  worst, 1.0 / max_regress);
    }
  }

  if (g_failures) {
    std::fprintf(stderr, "driver_bench: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("driver_bench: OK (results bit-identical across drivers)\n");
  return 0;
}
