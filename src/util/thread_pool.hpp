// Fixed-size work-queue thread pool.
//
// Used by the parallel actor driver (real concurrency, e.g. in examples and
// concurrency tests) and by the tensor kernel library for row-panel
// parallelism — the benchmark harness itself runs on the deterministic
// virtual-time engine in src/sim/ instead, so figures are reproducible on
// any core count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotated_mutex.hpp"

namespace stellaris {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1 enforced).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Total tasks ever enqueued (submit() + parallel_for() chunks). Exposed
  /// so tests can assert parallel_for's task granularity: a parallel_for
  /// over any index count enqueues at most size() tasks, never one per
  /// index.
  std::uint64_t tasks_enqueued() const {
    return tasks_enqueued_.load(std::memory_order_relaxed);
  }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  ///
  /// The index range is statically partitioned into at most size()
  /// contiguous chunks (one task per worker), so the per-task overhead is
  /// O(workers), not O(n). Completion is tracked by a single shared
  /// countdown instead of one future per index. The first exception thrown
  /// by `fn` is rethrown on the calling thread after all chunks finish.
  ///
  /// Must not be called from inside a pool task (the caller blocks until
  /// every chunk has run, so nested calls could deadlock the pool).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop() EXCLUDES(mu_);
  void enqueue(std::function<void()> task) EXCLUDES(mu_);

  /// Wake condition for workers. Also true when stopping (workers drain
  /// the queue, then exit).
  bool work_available() const REQUIRES(mu_) {
    return stopping_ || !queue_.empty();
  }

  std::vector<std::thread> workers_;
  Mutex mu_{"util/thread-pool", lock_rank::kThreadPool};
  std::queue<std::function<void()>> queue_ GUARDED_BY(mu_);
  CondVar cv_;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t> tasks_enqueued_{0};
};

}  // namespace stellaris
