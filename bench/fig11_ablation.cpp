// Fig. 11 — ablation study of Stellaris' two key designs on PPO/Hopper:
//  (a) staleness-aware aggregation vs Softsync vs SSP vs pure-async
//  (b) importance-sampling truncation on vs off
// Plus the extra ablation DESIGN.md calls out: the Eq. 4 staleness-
// modulated learning rate on/off.
#include "common.hpp"

#include <iostream>

using namespace stellaris;

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  const std::string env = "Hopper";
  const std::size_t rounds = bench::default_rounds(env);
  const std::size_t seeds = bench::default_seeds(env);

  // ---- (a) aggregation methods ------------------------------------------------
  {
    Table t({"method", "final_reward", "best_reward", "time_s",
             "cost_usd"});
    struct Mode {
      std::string name;
      core::AggregationMode mode;
    };
    for (const auto& m :
         {Mode{"Stellaris", core::AggregationMode::kStellaris},
          Mode{"Softsync", core::AggregationMode::kSoftsync},
          Mode{"SSP", core::AggregationMode::kSsp},
          Mode{"Pure async", core::AggregationMode::kPureAsync}}) {
      auto cfg = bench::base_config(env, rounds, 1);
      cfg.aggregation = m.mode;
      const auto s = bench::summarize(bench::run_seeds(cfg, seeds));
      t.row()
          .add(m.name)
          .add(s.final_reward, 1)
          .add(s.best_reward, 1)
          .add(s.time_s, 2)
          .add(s.total_cost, 4);
    }
    t.emit("Fig. 11(a) — gradient aggregation ablation",
           "fig11a_aggregation.csv");
    std::cout << "Expected shape: pure-async finishes fastest but converges"
                 " worse; Stellaris achieves the best reward.\n";
  }

  // ---- (b) importance-sampling truncation ---------------------------------------
  {
    auto cfg = bench::base_config(env, rounds, 1);
    auto with_runs = bench::run_seeds(cfg, seeds);
    cfg.enable_truncation = false;
    auto without_runs = bench::run_seeds(cfg, seeds);
    bench::emit_curve_comparison("Fig. 11(b) — IS truncation on vs off",
                                 "with_truncation", with_runs,
                                 "without_truncation", without_runs,
                                 "fig11b_truncation.csv");
    // Stability metric: stddev of the evaluated reward over the last half.
    auto tail_stddev = [](const std::vector<core::TrainResult>& runs) {
      RunningStat rs;
      for (const auto& run : runs)
        for (std::size_t i = run.rounds.size() / 2; i < run.rounds.size();
             ++i)
          if (run.rounds[i].evaluated) rs.add(run.rounds[i].reward);
      return rs.stddev();
    };
    std::cout << "late-training reward stddev: with=" << tail_stddev(with_runs)
              << " without=" << tail_stddev(without_runs)
              << "\nExpected shape: without truncation, training oscillates"
                 " more (higher variance, sudden drops).\n";
  }

  // ---- extra: Eq. 4 staleness-modulated LR on/off -------------------------------
  {
    Table t({"variant", "final_reward", "best_reward"});
    for (bool enabled : {true, false}) {
      auto cfg = bench::base_config(env, rounds, 1);
      cfg.enable_staleness_lr = enabled;
      const auto s = bench::summarize(bench::run_seeds(cfg, seeds));
      t.row()
          .add(enabled ? "alpha_c = alpha0/delta^(1/v)" : "alpha_c = alpha0")
          .add(s.final_reward, 1)
          .add(s.best_reward, 1);
    }
    t.emit("Extra ablation — Eq. 4 staleness-modulated learning rate",
           "fig11x_staleness_lr.csv");
  }
  return 0;
}
