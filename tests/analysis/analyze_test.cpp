// Unit tests for stellaris_analyze internals: the tokenizer, the
// function-shape extractor, layers.toml parsing/validation, and rule-pass
// behavior over synthetic in-memory projects. The end-to-end behavior
// (all four rules over a real tree) is pinned by the self-test corpus
// ctests; these tests cover the building blocks and edge cases that are
// awkward to express as corpus files.
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/analyze/analyzer.hpp"
#include "tools/analyze/functions.hpp"

namespace stellaris::analyze {
namespace {

SourceFile make_file(const std::string& rel, const std::string& text) {
  SourceFile f;
  f.rel = rel;
  f.tokens = tokenize(text);
  return f;
}

TEST(Tokenizer, StripsCommentsKeepsStrings) {
  const auto toks = tokenize(
      "int a = 1; // comment with \"quoted\"\n"
      "/* block\ncomment */ const char* s = \"hi there\";\n");
  std::vector<std::string> idents;
  std::vector<std::string> strings;
  for (const auto& t : toks) {
    if (t.kind == Token::Kind::kIdent) idents.push_back(t.text);
    if (t.kind == Token::Kind::kString) strings.push_back(t.text);
  }
  EXPECT_EQ(idents, (std::vector<std::string>{"int", "a", "const", "char",
                                              "s"}));
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "hi there");
}

TEST(Tokenizer, MergesScopeAndArrowTracksLines) {
  const auto toks = tokenize("a::b\nc->d");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[1].text, "::");
  EXPECT_EQ(toks[1].kind, Token::Kind::kPunct);
  EXPECT_EQ(toks[4].text, "->");
  EXPECT_EQ(toks[3].line, 2);
}

TEST(Tokenizer, RawStringsAndCharLiterals) {
  const auto toks = tokenize("x = R\"(raw \"inner\" text)\"; y = '\"';");
  ASSERT_GE(toks.size(), 2u);
  bool found = false;
  for (const auto& t : toks)
    if (t.kind == Token::Kind::kString) {
      EXPECT_EQ(t.text, "raw \"inner\" text");
      found = true;
    }
  EXPECT_TRUE(found);
  // The '"' char literal must not have opened a string.
  EXPECT_EQ(toks.back().text, ";");
}

TEST(MatchGroup, BalancedAndUnbalanced) {
  const auto toks = tokenize("f(a, g(b), {c})");
  ASSERT_EQ(toks[1].text, "(");
  EXPECT_EQ(match_group(toks, 1), toks.size());  // spans to final ')'
  const auto open = tokenize("f(a");
  EXPECT_EQ(match_group(open, 1), open.size());  // unbalanced: clamps to end
}

TEST(ExtractFunctions, FreeFunctionAndCtorInits) {
  const SourceFile file = make_file(
      "src/util/x.cpp",
      "int add(int a, int b) { return a + b; }\n"
      "Widget::Widget(int v) : value_(v), name_{\"w\"} { init(); }\n"
      "void decl_only(int);\n");
  const auto defs = extract_functions(file);
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].name, "add");
  EXPECT_EQ(defs[1].name, "Widget");
  // The ctor body must start after the init list.
  const auto calls =
      calls_in_range(file.tokens, defs[1].body_begin, defs[1].body_end);
  EXPECT_EQ(calls, (std::vector<std::string>{"init"}));
}

TEST(ExtractFunctions, ControlKeywordsAreNotCalls) {
  const SourceFile file = make_file(
      "src/util/x.cpp",
      "void f() { if (a) { g(); } while (b) { h(); } return; }\n");
  const auto defs = extract_functions(file);
  ASSERT_EQ(defs.size(), 1u);
  const auto calls =
      calls_in_range(file.tokens, defs[0].body_begin, defs[0].body_end);
  EXPECT_EQ(calls, (std::vector<std::string>{"g", "h"}));
}

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(Layers, ParsesAndValidates) {
  const auto path = write_temp(
      "layers_ok.toml",
      "# comment\n[layers]\nutil = []\nobs = [\"util\"]\n");
  const LayerGraph graph = parse_layers_file(path);
  EXPECT_TRUE(graph.errors.empty());
  ASSERT_EQ(graph.deps.size(), 2u);
  EXPECT_EQ(graph.deps.at("obs"), std::vector<std::string>{"util"});
}

TEST(Layers, RejectsCycleAndUndeclaredDep) {
  const auto path = write_temp(
      "layers_bad.toml",
      "[layers]\na = [\"b\"]\nb = [\"a\"]\nc = [\"ghost\"]\n");
  const LayerGraph graph = parse_layers_file(path);
  ASSERT_FALSE(graph.errors.empty());
  bool cycle = false, undeclared = false;
  for (const auto& e : graph.errors) {
    if (e.find("cycle") != std::string::npos) cycle = true;
    if (e.find("undeclared") != std::string::npos) undeclared = true;
  }
  EXPECT_TRUE(cycle);
  EXPECT_TRUE(undeclared);
}

TEST(Layers, FlagsUpwardIncludeAndHonorsMarker) {
  LayerGraph graph;
  graph.deps["util"] = {};
  graph.deps["obs"] = {"util"};
  Project project;
  SourceFile bad = make_file("src/util/bad.cpp", "int x;\n");
  bad.includes.emplace_back("obs/ledger.hpp", 3);
  project.files.push_back(bad);

  std::vector<Finding> findings;
  check_layers(project, graph, findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-dag");
  EXPECT_EQ(findings[0].key, "obs/ledger.hpp");
  EXPECT_EQ(findings[0].id(), "layer-dag src/util/bad.cpp obs/ledger.hpp");

  // Same edge with a suppression marker on the include line: clean.
  project.files[0].markers[3].insert("layer-dag");
  findings.clear();
  check_layers(project, graph, findings);
  EXPECT_TRUE(findings.empty());
}

TEST(Ledger, EmitWithoutBranchIsFlagged) {
  Project project;
  project.files.push_back(make_file(
      "src/core/emit.cpp",
      "void f(double t) { obs::LedgerEvent(\"boom\", t).finish(); }\n"));
  project.files.push_back(make_file(
      "tools/report/ledger_analysis.cpp",
      "void g(const Value& ev) {\n"
      "  const std::string type = str_or(ev, \"ev\", \"\");\n"
      "  if (type == \"other\") { num_or(ev, \"x\", 0.0); }\n"
      "}\n"));
  std::vector<Finding> findings;
  check_ledger(project, findings);
  // "boom" unparsed at the emit site; "other" stale at the parser.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].key, "unparsed:boom");
  EXPECT_EQ(findings[1].key, "stale:other");

  // Declaring the event ignored in the parser file retires the first
  // finding; emitting "other" would retire the second.
  project.files[1].ignored_events.insert("boom");
  findings.clear();
  check_ledger(project, findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].key, "stale:other");
}

TEST(Baseline, ParsesAndRejectsMalformed) {
  const auto path = write_temp(
      "baseline.txt",
      "# comment only\n"
      "lock-rank src/obs/ledger.hpp name:obs/ledger  # trailing comment\n"
      "not-enough-parts\n");
  const Baseline baseline = parse_baseline_file(path);
  EXPECT_EQ(baseline.entries.size(), 1u);
  EXPECT_TRUE(
      baseline.entries.count("lock-rank src/obs/ledger.hpp name:obs/ledger"));
  ASSERT_EQ(baseline.errors.size(), 1u);
  EXPECT_NE(baseline.errors[0].find("expected"), std::string::npos);
}

}  // namespace
}  // namespace stellaris::analyze
