// Planar torque-controlled locomotion simulator — the MuJoCo substitute.
//
// A torso slides along x; `n_joints` torque-actuated limb oscillators push
// against the ground. Thrust transfers to forward velocity only when a limb
// sweeps backward while "planted" (angle in the contact window), so the
// policy must discover a coordinated gait — the same credit-assignment
// structure (alive bonus + forward progress − control cost, terminate on
// fall) that makes Hopper/Walker2d/Humanoid canonical PPO benchmarks.
//
// Integration is semi-implicit Euler, which conserves energy well enough
// that uncontrolled dynamics neither blow up nor damp to a fixed point
// (property-tested in tests/envs).
#pragma once

#include <cstdint>

#include "envs/env.hpp"
#include "util/rng.hpp"

namespace stellaris::envs {

/// Tunable morphology, instantiated three ways below.
struct LocomotionParams {
  std::string name;
  std::size_t n_joints = 3;
  double torque_limit = 1.0;
  double joint_damping = 0.12;
  double joint_stiffness = 0.35;  ///< pull toward neutral angle
  double torso_mass = 1.0;
  double friction = 0.55;         ///< ground drag on torso velocity
  double thrust_gain = 1.9;       ///< planted-limb sweep → forward force
  double fall_angle = 1.25;       ///< |mean limb angle| beyond which we fall
  double alive_bonus = 1.0;
  double ctrl_cost = 0.05;
  double obs_noise = 0.005;
  std::size_t max_steps = 200;
  double reward_scale = 250.0;

  static LocomotionParams hopper();
  static LocomotionParams walker2d();
  static LocomotionParams humanoid();
};

class LocomotionEnv final : public Env {
 public:
  explicit LocomotionEnv(LocomotionParams params);

  const EnvSpec& spec() const override { return spec_; }
  std::vector<float> reset(std::uint64_t seed) override;
  StepResult step(std::span<const float> action) override;
  void reset_into(std::uint64_t seed, std::span<float> obs) override;
  StepOut step_into(std::span<const float> action,
                    std::span<float> obs) override;

  /// Forward velocity of the torso (exposed for tests).
  double torso_velocity() const { return torso_vel_; }
  /// Total mechanical-ish energy of the limb system (for integrator tests).
  double limb_energy() const;

 private:
  void observe_into(std::span<float> obs);
  StepOut step_physics(std::span<const float> action);
  bool fallen() const;

  LocomotionParams p_;
  EnvSpec spec_;
  Rng rng_{1};

  std::vector<double> angle_;   // joint angles
  std::vector<double> omega_;   // joint angular velocities
  double torso_vel_ = 0.0;
  double torso_x_ = 0.0;
  std::size_t step_count_ = 0;
};

}  // namespace stellaris::envs
