// Cost accounting per the paper's §VIII-A cost model: every function
// invocation is charged (dollar-per-resource-second) × (execution seconds),
// where the unit price is the VM hourly price divided by 3600 and by the
// VM's maximum concurrent-function capacity. Pre-warming and keep-alive are
// explicitly excluded, as in the paper. Costs are also split learner vs
// actor for the stacked bars of Fig. 8.
#pragma once

#include <cstdint>

namespace stellaris::serverless {

enum class FnKind { kLearner, kParameter, kActor };

const char* fn_kind_name(FnKind kind);

class CostMeter {
 public:
  /// Charge one invocation: unit price ($/s) × execution duration (s).
  void record(FnKind kind, double unit_price_per_s, double duration_s);

  double cost(FnKind kind) const;
  double total_cost() const;

  /// Accumulated billable execution seconds per kind.
  double busy_seconds(FnKind kind) const;
  std::uint64_t invocations(FnKind kind) const;

  void reset();

 private:
  struct PerKind {
    double cost = 0.0;
    double seconds = 0.0;
    std::uint64_t count = 0;
  };
  PerKind& bucket(FnKind kind);
  const PerKind& bucket(FnKind kind) const;

  PerKind learner_, parameter_, actor_;
};

}  // namespace stellaris::serverless
