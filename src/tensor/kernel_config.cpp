#include "tensor/kernel_config.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "util/annotated_mutex.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace stellaris::ops {
namespace {

std::size_t threads_from_env() {
  const char* env = std::getenv("STELLARIS_KERNEL_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const std::string s(env);
  if (s == "auto") {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  const long n = std::strtol(s.c_str(), nullptr, 10);
  return n < 1 ? 1 : static_cast<std::size_t>(n);
}

std::atomic<std::size_t>& thread_count() {
  static std::atomic<std::size_t> n{threads_from_env()};
  return n;
}

std::atomic<std::uint64_t>& min_flops() {
  // 2·80³ ≈ 1 MFLOP: roughly where a panel outweighs the fork/join cost.
  static std::atomic<std::uint64_t> f{1'000'000};
  return f;
}

}  // namespace

std::size_t kernel_threads() {
  return thread_count().load(std::memory_order_relaxed);
}

void set_kernel_threads(std::size_t n) {
  thread_count().store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

std::size_t apply_driver_thread_budget(std::size_t driver_threads,
                                       std::size_t hardware) {
  if (driver_threads <= 1) return kernel_threads();
  if (hardware == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    hardware = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  const std::size_t k = kernel_threads();
  if (driver_threads * k <= hardware) return k;
  const std::size_t clamped =
      std::max<std::size_t>(1, hardware / driver_threads);
  if (clamped < k) {
    set_kernel_threads(clamped);
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      LOG_WARN << "kernel threads clamped " << k << " -> " << clamped << ": "
               << driver_threads << " driver threads x " << k
               << " kernel threads oversubscribes " << hardware
               << " hardware threads (results unchanged; kernels are "
               << "bit-identical at any thread count)";
    }
  }
  return kernel_threads();
}

std::uint64_t kernel_parallel_min_flops() {
  return min_flops().load(std::memory_order_relaxed);
}

void set_kernel_parallel_min_flops(std::uint64_t flops) {
  min_flops().store(flops, std::memory_order_relaxed);
}

namespace detail {

ThreadPool& kernel_pool(std::size_t threads) {
  static Mutex mu("tensor/kernel-pool", lock_rank::kKernelPool);
  static std::unique_ptr<ThreadPool> pool;
  MutexLock lock(mu);
  if (!pool || pool->size() != threads)
    pool = std::make_unique<ThreadPool>(threads);
  return *pool;
}

}  // namespace detail
}  // namespace stellaris::ops
