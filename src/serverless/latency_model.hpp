// Latency and compute-duration model for the virtual-time cluster.
//
// Calibration targets the paper's observed regimes (Fig. 14: one training
// round is seconds-scale with <5% orchestration overhead): V100-class
// learner compute from FLOP counts, per-step environment costs for actors,
// container cold/warm starts in the OpenWhisk range, and the three
// hierarchical data-passing tiers of §V-B (shared memory / RPC / cache).
// Every duration gets deterministic seeded jitter so repeated runs with
// different seeds produce the paper's dynamic, heterogeneous timings.
#pragma once

#include <cstddef>
#include <string>

#include "util/rng.hpp"

namespace stellaris::serverless {

/// Which channel a payload travels over (§V-B hierarchical data passing).
enum class DataTier { kSharedMemory, kRpc, kCache };

const char* data_tier_name(DataTier tier);

struct LatencyModel {
  // -- container lifecycle ---------------------------------------------------
  double cold_start_s = 1.2;
  double warm_start_s = 0.010;
  double keep_alive_s = 600.0;  ///< paper: 10 min, as in OpenWhisk
  double invoke_overhead_s = 0.002;

  // -- data passing tiers (base latency + bandwidth) ---------------------------
  double shm_base_s = 2e-6;
  double shm_bw_Bps = 10e9;
  double rpc_base_s = 150e-6;
  double rpc_bw_Bps = 1.25e9;   // ~10 Gb/s
  double cache_base_s = 400e-6;
  double cache_bw_Bps = 0.6e9;  // serialized + Redis round trip

  // -- compute ------------------------------------------------------------------
  double gpu_efficiency = 0.25;     ///< sustained fraction of peak TFLOPS
  double learner_base_s = 0.05;     ///< kernel-launch / framework floor
  /// Per-sample framework overhead (batch assembly, advantage math, Python
  /// dispatch in the original system) — this is what makes learner-count
  /// scaling visible in Fig. 3(a) at realistic batch sizes.
  double learner_per_sample_s = 4e-4;
  double param_fn_base_s = 0.02;
  double aggregate_bw_Bps = 5e9;    ///< gradient reduction throughput
  double mujoco_step_s = 0.0008;    ///< env step + policy inference on CPU
  double atari_step_s = 0.0025;
  /// Serving-tier inference: per-batch dispatch floor plus per-sample and
  /// per-FLOP terms. The floor is what dynamic batching amortizes — N
  /// requests in one forward pay it once instead of N times (the
  /// TorchBeast batched-inference lever).
  double serve_base_s = 0.002;
  double serve_per_sample_s = 2e-5;
  /// Effective parameter multiplier: the paper trains Table II-sized
  /// networks; this repo's are ~scale× smaller, so virtual compute times
  /// scale the real parameter count back up to land in the paper's regime.
  double param_scale = 16.0;

  double jitter_frac = 0.08;  ///< lognormal-ish multiplicative noise

  /// Transfer time of `bytes` over a tier.
  double transfer_s(DataTier tier, std::size_t bytes) const;

  /// Gradient computation time for a batch on one learner slot.
  double learner_compute_s(std::size_t batch_size, std::size_t param_count,
                           double slot_tflops) const;

  /// Parameter-function aggregation time for `n_grads` gradients.
  double aggregate_s(std::size_t n_grads, std::size_t param_count) const;

  /// Actor sampling time for `steps` environment steps.
  double actor_sample_s(std::size_t steps, bool image_env) const;

  /// Policy-inference time for one served batch (forward only: 2 FLOPs per
  /// parameter per sample), on the serving containers' CPU budget.
  double serve_compute_s(std::size_t batch_size,
                         std::size_t param_count) const;

  /// Apply multiplicative jitter (clamped to stay positive).
  double jittered(double base, Rng& rng) const;
};

}  // namespace stellaris::serverless
