#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace stellaris::nn {
namespace {

TEST(Sgd, PlainStep) {
  SgdOptimizer opt(0.1);
  std::vector<float> p = {1.0f, 2.0f};
  std::vector<float> g = {1.0f, -1.0f};
  opt.step(p, g);
  EXPECT_FLOAT_EQ(p[0], 0.9f);
  EXPECT_FLOAT_EQ(p[1], 2.1f);
}

TEST(Sgd, MomentumAccumulates) {
  SgdOptimizer opt(0.1, 0.9);
  std::vector<float> p = {0.0f};
  std::vector<float> g = {1.0f};
  opt.step(p, g);  // v=1, p=-0.1
  EXPECT_FLOAT_EQ(p[0], -0.1f);
  opt.step(p, g);  // v=1.9, p=-0.29
  EXPECT_FLOAT_EQ(p[0], -0.29f);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, the first Adam step is ≈ lr·sign(g).
  AdamOptimizer opt(0.01);
  std::vector<float> p = {0.0f, 0.0f};
  std::vector<float> g = {5.0f, -0.001f};
  opt.step(p, g);
  EXPECT_NEAR(p[0], -0.01f, 1e-4f);
  EXPECT_NEAR(p[1], 0.01f, 1e-3f);
}

TEST(Adam, MatchesReferenceImplementation) {
  // Two steps of textbook Adam computed by hand.
  const double lr = 0.1, b1 = 0.9, b2 = 0.999, eps = 1e-8;
  AdamOptimizer opt(lr, b1, b2, eps);
  std::vector<float> p = {1.0f};
  double m = 0, v = 0, ref = 1.0;
  for (int t = 1; t <= 2; ++t) {
    const double g = 2.0 * ref;  // gradient of x² at ref
    std::vector<float> grad = {static_cast<float>(2.0 * p[0])};
    opt.step(p, grad);
    m = b1 * m + (1 - b1) * g;
    v = b2 * v + (1 - b2) * g * g;
    const double mhat = m / (1 - std::pow(b1, t));
    const double vhat = v / (1 - std::pow(b2, t));
    ref -= lr * mhat / (std::sqrt(vhat) + eps);
    EXPECT_NEAR(p[0], ref, 1e-4);
  }
}

TEST(Adam, ConvergesOnQuadratic) {
  AdamOptimizer opt(0.1);
  std::vector<float> p = {5.0f};
  for (int i = 0; i < 500; ++i) {
    std::vector<float> g = {2.0f * p[0]};
    opt.step(p, g);
  }
  EXPECT_NEAR(p[0], 0.0f, 0.05f);
}

TEST(RmsProp, StepShrinksWithAccumulatedSquare) {
  RmsPropOptimizer opt(0.1, 0.9);
  std::vector<float> p = {0.0f};
  std::vector<float> g = {1.0f};
  opt.step(p, g);
  const float first = -p[0];
  const float before = p[0];
  opt.step(p, g);
  const float second = before - p[0];
  EXPECT_GT(first, 0.0f);
  EXPECT_LT(second, first);  // accumulator grows, step shrinks
}

TEST(Optimizers, StepWithLrOverridesConfiguredRate) {
  SgdOptimizer opt(100.0);
  std::vector<float> p = {0.0f};
  std::vector<float> g = {1.0f};
  opt.step_with_lr(p, g, 0.5);
  EXPECT_FLOAT_EQ(p[0], -0.5f);
}

TEST(Optimizers, SizeMismatchThrows) {
  AdamOptimizer opt(0.1);
  std::vector<float> p = {0.0f};
  std::vector<float> g = {1.0f, 2.0f};
  EXPECT_THROW(opt.step(p, g), Error);
}

TEST(Optimizers, FactoryCreatesAllKinds) {
  EXPECT_EQ(make_optimizer("sgd", 0.1)->name(), "sgd");
  EXPECT_EQ(make_optimizer("adam", 0.1)->name(), "adam");
  EXPECT_EQ(make_optimizer("rmsprop", 0.1)->name(), "rmsprop");
  EXPECT_THROW(make_optimizer("adagrad", 0.1), ConfigError);
}

TEST(Optimizers, CloneIsIndependent) {
  AdamOptimizer opt(0.1);
  std::vector<float> p = {1.0f};
  std::vector<float> g = {1.0f};
  opt.step(p, g);
  auto copy = opt.clone();
  std::vector<float> p1 = p, p2 = p;
  opt.step(p1, g);
  copy->step_with_lr(p2, g, 0.1);
  EXPECT_FLOAT_EQ(p1[0], p2[0]);  // same internal state after clone
}

TEST(ClipGradNorm, ScalesOnlyWhenAboveLimit) {
  std::vector<float> g = {3.0f, 4.0f};  // norm 5
  const double pre = clip_grad_norm(g, 10.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_FLOAT_EQ(g[0], 3.0f);  // untouched

  const double pre2 = clip_grad_norm(g, 1.0);
  EXPECT_DOUBLE_EQ(pre2, 5.0);
  EXPECT_NEAR(std::sqrt(g[0] * g[0] + g[1] * g[1]), 1.0f, 1e-5f);
}

TEST(ClipGradNorm, ZeroGradientIsSafe) {
  std::vector<float> g = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(clip_grad_norm(g, 1.0), 0.0);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

// Property: every optimizer reduces a convex quadratic from any start.
class OptimizerConvergence : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerConvergence, ReducesQuadraticLoss) {
  auto opt = make_optimizer(GetParam(), 0.05);
  std::vector<float> p = {4.0f, -3.0f};
  auto loss = [&] { return p[0] * p[0] + p[1] * p[1]; };
  const double initial = loss();
  for (int i = 0; i < 200; ++i) {
    std::vector<float> g = {2 * p[0], 2 * p[1]};
    opt->step(p, g);
  }
  EXPECT_LT(loss(), initial * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Kinds, OptimizerConvergence,
                         ::testing::Values("sgd", "adam", "rmsprop"));

}  // namespace
}  // namespace stellaris::nn
