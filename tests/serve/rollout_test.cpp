// RolloutController: canary assignment, SLO-breach and value-drift
// rollbacks, promotion after consecutive healthy windows, and the
// zero-draw determinism contract while no canary is active.
#include "serve/rollout.hpp"

#include <gtest/gtest.h>

namespace stellaris::serve {
namespace {

RolloutConfig small_windows() {
  RolloutConfig cfg;
  cfg.min_window_requests = 4;
  cfg.healthy_windows_to_promote = 2;
  cfg.slo_p99_s = 0.100;
  cfg.max_value_drift = 0.5;
  return cfg;
}

void fill_window(RolloutController& rc, std::uint64_t stable,
                 std::uint64_t canary, double canary_lat, double canary_val) {
  for (int i = 0; i < 8; ++i) {
    rc.observe(stable, 0.010, 1.0);
    rc.observe(canary, canary_lat, canary_val);
  }
}

TEST(Rollout, AssignDrawsNothingWithoutCanary) {
  RolloutController rc(small_windows(), 1);
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rc.assign(a), 1u);
  // The RNG was never advanced: it still produces the same stream as a twin.
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rollout, AssignSplitsTrafficWhileCanaryActive) {
  RolloutController rc(small_windows(), 1);
  rc.start(2, 0.5);
  Rng rng(7);
  int canary = 0;
  for (int i = 0; i < 1000; ++i)
    if (rc.assign(rng) == 2u) ++canary;
  EXPECT_GT(canary, 400);
  EXPECT_LT(canary, 600);
}

TEST(Rollout, SmallWindowCarriesOver) {
  RolloutController rc(small_windows(), 1);
  rc.start(2, 0.5);
  rc.observe(2, 0.010, 1.0);  // 1 < min_window_requests
  const auto out = rc.evaluate();
  EXPECT_EQ(out.action, RolloutController::Action::kContinue);
  EXPECT_EQ(out.reason, "window_small");
  EXPECT_TRUE(rc.canary_active());
}

TEST(Rollout, SloBreachRollsBack) {
  RolloutController rc(small_windows(), 1);
  rc.start(2, 0.5);
  fill_window(rc, 1, 2, /*canary_lat=*/0.200, /*canary_val=*/1.0);
  const auto out = rc.evaluate();
  EXPECT_EQ(out.action, RolloutController::Action::kRollback);
  EXPECT_EQ(out.reason, "slo_breach");
  EXPECT_GT(out.canary_p99, 0.100);
  EXPECT_FALSE(rc.canary_active());
  EXPECT_EQ(rc.stable_version(), 1u);
  EXPECT_EQ(rc.rollbacks(), 1u);
}

TEST(Rollout, ValueDriftRollsBack) {
  RolloutController rc(small_windows(), 1);
  rc.start(2, 0.5);
  // Healthy latency, but the canary predicts wildly different values.
  fill_window(rc, 1, 2, /*canary_lat=*/0.010, /*canary_val=*/5.0);
  const auto out = rc.evaluate();
  EXPECT_EQ(out.action, RolloutController::Action::kRollback);
  EXPECT_EQ(out.reason, "value_drift");
  EXPECT_GT(out.drift, 0.5);
  EXPECT_EQ(rc.stable_version(), 1u);
}

TEST(Rollout, ConsecutiveHealthyWindowsPromote) {
  RolloutController rc(small_windows(), 1);
  rc.start(2, 0.5);
  fill_window(rc, 1, 2, 0.010, 1.0);
  auto out = rc.evaluate();
  EXPECT_EQ(out.action, RolloutController::Action::kContinue);
  EXPECT_EQ(out.reason, "healthy");
  EXPECT_TRUE(rc.canary_active());
  fill_window(rc, 1, 2, 0.010, 1.0);
  out = rc.evaluate();
  EXPECT_EQ(out.action, RolloutController::Action::kPromote);
  EXPECT_FALSE(rc.canary_active());
  EXPECT_EQ(rc.stable_version(), 2u);
  EXPECT_EQ(rc.promotions(), 1u);
}

TEST(Rollout, BreachResetsHealthyStreak) {
  RolloutConfig cfg = small_windows();
  cfg.healthy_windows_to_promote = 2;
  RolloutController rc(cfg, 1);
  rc.start(2, 0.5);
  fill_window(rc, 1, 2, 0.010, 1.0);
  EXPECT_EQ(rc.evaluate().action, RolloutController::Action::kContinue);
  fill_window(rc, 1, 2, 0.200, 1.0);  // breach on the second window
  EXPECT_EQ(rc.evaluate().action, RolloutController::Action::kRollback);
  EXPECT_EQ(rc.stable_version(), 1u);
}

TEST(Rollout, EvaluateWithoutCanaryIsNone) {
  RolloutController rc(small_windows(), 1);
  EXPECT_EQ(rc.evaluate().action, RolloutController::Action::kNone);
}

}  // namespace
}  // namespace stellaris::serve
