#include "nn/actor_critic.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace stellaris::nn {
namespace {

ActorCritic make_mujoco_model(std::uint64_t seed = 1) {
  return ActorCritic(ObsSpec::vector(8), ActionKind::kContinuous, 3,
                     NetworkSpec::mujoco(16), seed);
}

ActorCritic make_atari_model(std::uint64_t seed = 1) {
  return ActorCritic(ObsSpec::planes(3, 20, 20), ActionKind::kDiscrete, 4,
                     NetworkSpec::atari(), seed);
}

TEST(ActorCritic, PolicyAndValueShapes) {
  auto m = make_mujoco_model();
  Rng rng(2);
  Tensor obs = Tensor::randn({5, 8}, rng);
  EXPECT_EQ(m.policy_forward(obs).shape(), (Shape{5, 3}));
  EXPECT_EQ(m.value_forward(obs).shape(), (Shape{5}));
}

TEST(ActorCritic, AtariShapes) {
  auto m = make_atari_model();
  Rng rng(3);
  Tensor obs = Tensor::rand_uniform({2, 3 * 20 * 20}, rng, 0.0f, 1.0f);
  EXPECT_EQ(m.policy_forward(obs).shape(), (Shape{2, 4}));
  EXPECT_EQ(m.value_forward(obs).shape(), (Shape{2}));
}

TEST(ActorCritic, ContinuousHasLogStdDiscreteDoesNot) {
  auto c = make_mujoco_model();
  auto d = make_atari_model();
  EXPECT_NE(c.log_std(), nullptr);
  EXPECT_EQ(c.log_std()->numel(), 3u);
  EXPECT_EQ(d.log_std(), nullptr);
}

TEST(ActorCritic, FlatParamRoundTrip) {
  auto m = make_mujoco_model(7);
  const auto flat = m.flat_params();
  EXPECT_EQ(flat.size(), m.flat_size());
  auto m2 = make_mujoco_model(8);  // different init
  m2.set_flat_params(flat);
  EXPECT_EQ(m2.flat_params(), flat);
}

TEST(ActorCritic, SetFlatWrongSizeThrows) {
  auto m = make_mujoco_model();
  std::vector<float> bad(m.flat_size() + 1, 0.0f);
  EXPECT_THROW(m.set_flat_params(bad), Error);
}

TEST(ActorCritic, CloneIsDeepAndEqual) {
  auto m = make_mujoco_model(9);
  auto c = m.clone();
  EXPECT_EQ(c->flat_params(), m.flat_params());
  // Mutating the clone does not touch the original.
  auto p = c->flat_params();
  p[0] += 1.0f;
  c->set_flat_params(p);
  EXPECT_NE(c->flat_params(), m.flat_params());
}

TEST(ActorCritic, SameSeedSameInit) {
  auto a = make_mujoco_model(5);
  auto b = make_mujoco_model(5);
  EXPECT_EQ(a.flat_params(), b.flat_params());
}

TEST(ActorCritic, DifferentSeedDifferentInit) {
  auto a = make_mujoco_model(5);
  auto b = make_mujoco_model(6);
  EXPECT_NE(a.flat_params(), b.flat_params());
}

TEST(ActorCritic, LogStdSpanPointsAtLogStd) {
  auto m = make_mujoco_model(10);
  const auto [off, len] = m.log_std_span();
  EXPECT_EQ(len, 3u);
  auto flat = m.flat_params();
  for (std::size_t i = 0; i < len; ++i)
    EXPECT_FLOAT_EQ(flat[off + i], (*m.log_std())[i]);
  // Editing through the span lands in the model's log_std.
  flat[off] = -1.25f;
  m.set_flat_params(flat);
  EXPECT_FLOAT_EQ((*m.log_std())[0], -1.25f);
}

TEST(ActorCritic, LogStdSpanEmptyForDiscrete) {
  auto m = make_atari_model();
  const auto [off, len] = m.log_std_span();
  EXPECT_EQ(len, 0u);
  (void)off;
}

TEST(ActorCritic, ZeroGradClearsAccumulators) {
  auto m = make_mujoco_model(11);
  Rng rng(4);
  Tensor obs = Tensor::randn({3, 8}, rng);
  Tensor out = m.policy_forward(obs);
  m.policy_backward(Tensor::ones(out.shape()));
  Tensor v = m.value_forward(obs);
  m.value_backward(Tensor::ones({3}));
  double norm = 0.0;
  for (float g : m.flat_grads()) norm += std::abs(g);
  EXPECT_GT(norm, 0.0);
  m.zero_grad();
  for (float g : m.flat_grads()) EXPECT_EQ(g, 0.0f);
}

TEST(ActorCritic, GradSizeMatchesParamSize) {
  auto m = make_mujoco_model(12);
  EXPECT_EQ(m.flat_grads().size(), m.flat_size());
}

TEST(ActorCritic, PolicyAndValueNetsAreIndependent) {
  auto m = make_mujoco_model(13);
  Rng rng(5);
  Tensor obs = Tensor::randn({2, 8}, rng);
  Tensor v_before = m.value_forward(obs);
  // Backprop only through the policy; value outputs must be unchanged.
  Tensor out = m.policy_forward(obs);
  m.policy_backward(Tensor::ones(out.shape()));
  Tensor v_after = m.value_forward(obs);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_FLOAT_EQ(v_before[i], v_after[i]);
}

TEST(ActorCritic, RejectsBadConstruction) {
  EXPECT_THROW(ActorCritic(ObsSpec::vector(0), ActionKind::kContinuous, 2,
                           NetworkSpec::mujoco(8), 1),
               Error);
  EXPECT_THROW(ActorCritic(ObsSpec::vector(4), ActionKind::kContinuous, 0,
                           NetworkSpec::mujoco(8), 1),
               Error);
  // CNN spec demands image observations.
  EXPECT_THROW(ActorCritic(ObsSpec::vector(4), ActionKind::kDiscrete, 2,
                           NetworkSpec::atari(), 1),
               Error);
}

}  // namespace
}  // namespace stellaris::nn
