#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace stellaris::fault {
namespace {

TEST(FaultPlan, DefaultPlanInjectsNothing) {
  FaultPlan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.config.any());
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, AnyDetectsEachKnob) {
  FaultConfig cfg;
  cfg.crash_prob = 0.1;
  EXPECT_TRUE(cfg.any());
  cfg = FaultConfig{};
  cfg.straggler_prob = 0.1;
  EXPECT_TRUE(cfg.any());
  cfg = FaultConfig{};
  cfg.reclaim_rate_per_hour = 1.0;
  EXPECT_TRUE(cfg.any());
  cfg = FaultConfig{};
  cfg.cache_fail_prob = 0.1;
  EXPECT_TRUE(cfg.any());
  cfg = FaultConfig{};
  cfg.cache_delay_prob = 0.1;
  EXPECT_TRUE(cfg.any());
}

TEST(FaultPlan, ScheduleAloneCountsAsFaults) {
  FaultPlan plan;
  plan.schedule.push_back({1.0, FaultKind::kCrash, -1, 0.5});
  EXPECT_TRUE(plan.any());
  EXPECT_FALSE(plan.config.any());
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, ValidateRejectsBadProbabilities) {
  FaultConfig cfg;
  cfg.crash_prob = -0.1;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.crash_prob = 1.5;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(FaultPlan, ValidateRejectsCertainFailureForLiveness) {
  // crash_prob = 1 makes every retry chain fail forever.
  FaultConfig cfg;
  cfg.crash_prob = 1.0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = FaultConfig{};
  cfg.cache_fail_prob = 1.0;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(FaultPlan, ValidateRejectsBadCrashFractionBounds) {
  FaultConfig cfg;
  cfg.crash_frac_lo = 0.8;
  cfg.crash_frac_hi = 0.2;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = FaultConfig{};
  cfg.crash_frac_hi = 1.5;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(FaultPlan, ValidateRejectsBadScheduleEntries) {
  FaultPlan plan;
  plan.schedule.push_back({-1.0, FaultKind::kCrash, -1, 0.5});
  EXPECT_THROW(plan.validate(), ConfigError);
  plan.schedule = {{1.0, FaultKind::kStraggler, -1, 0.5}};  // mult < 1
  EXPECT_THROW(plan.validate(), ConfigError);
  plan.schedule = {{1.0, FaultKind::kCrash, -1, 1.5}};  // frac > 1
  EXPECT_THROW(plan.validate(), ConfigError);
}

TEST(FaultPlan, NamesAreStable) {
  EXPECT_STREQ(error_kind_name(ErrorKind::kNone), "none");
  EXPECT_STREQ(error_kind_name(ErrorKind::kCrash), "crash");
  EXPECT_STREQ(error_kind_name(ErrorKind::kVmReclaim), "vm_reclaim");
  EXPECT_STREQ(error_kind_name(ErrorKind::kDeadline), "deadline");
  EXPECT_STREQ(fault_kind_name(FaultKind::kCacheFail), "cache_fail");
}

}  // namespace
}  // namespace stellaris::fault
