#include "rl/actor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stellaris::rl {
namespace {

nn::ActorCritic hopper_policy(std::uint64_t seed = 1) {
  const auto spec = envs::env_spec("Hopper");
  return nn::ActorCritic(spec.obs, spec.action_kind, spec.act_dim,
                         nn::NetworkSpec::mujoco(8), seed);
}

TEST(Actor, SampleProducesFullHorizon) {
  Actor actor(envs::make_env("Hopper"), 1);
  auto policy = hopper_policy();
  auto batch = actor.sample(policy, 50, 7);
  EXPECT_EQ(batch.size(), 50u);
  EXPECT_EQ(batch.policy_version, 7u);
  EXPECT_EQ(batch.obs.dim(0), 50u);
  EXPECT_EQ(batch.actions_cont.dim(0), 50u);
  EXPECT_EQ(batch.action_kind, nn::ActionKind::kContinuous);
  EXPECT_TRUE(batch.obs.all_finite());
  EXPECT_TRUE(batch.behaviour_log_probs.all_finite());
}

TEST(Actor, DiscreteEnvFillsDiscreteActions) {
  const auto spec = envs::env_spec("SpaceInvaders");
  nn::ActorCritic policy(spec.obs, spec.action_kind, spec.act_dim,
                         nn::NetworkSpec::atari(), 1);
  Actor actor(envs::make_env("SpaceInvaders"), 2);
  auto batch = actor.sample(policy, 20, 0);
  EXPECT_EQ(batch.actions_disc.size(), 20u);
  EXPECT_TRUE(batch.actions_cont.empty());
  for (auto a : batch.actions_disc) EXPECT_LT(a, spec.act_dim);
}

TEST(Actor, EpisodesPersistAcrossSampleCalls) {
  Actor actor(envs::make_env("Hopper"), 3);
  auto policy = hopper_policy();
  // Hopper episodes run up to 200 steps; with horizon 60 the first episode
  // should complete somewhere inside the first few calls and be recorded.
  std::size_t episodes = 0;
  for (int call = 0; call < 6; ++call) {
    auto batch = actor.sample(policy, 60, 0);
    episodes += batch.episode_returns.size();
  }
  EXPECT_GE(episodes, 1u);
}

TEST(Actor, DonesMatchEpisodeReturnsCount) {
  Actor actor(envs::make_env("Qbert"), 4);
  const auto spec = envs::env_spec("Qbert");
  nn::ActorCritic policy(spec.obs, spec.action_kind, spec.act_dim,
                         nn::NetworkSpec::atari(), 2);
  auto batch = actor.sample(policy, 200, 0);
  std::size_t dones = 0;
  for (std::size_t t = 0; t < batch.size(); ++t)
    if (batch.dones[t] > 0.5f) ++dones;
  EXPECT_EQ(dones, batch.episode_returns.size());
}

TEST(Actor, BootstrapZeroWhenEndingOnDone) {
  // With horizon far beyond max_steps, sampling almost surely ends
  // mid-episode; just verify the invariant that bootstrap is 0 iff the last
  // step is done.
  Actor actor(envs::make_env("Hopper"), 5);
  auto policy = hopper_policy();
  auto batch = actor.sample(policy, 64, 0);
  if (batch.dones[63] > 0.5f) {
    EXPECT_FLOAT_EQ(batch.bootstrap_value, 0.0f);
  }
}

TEST(Actor, SameSeedSameTrajectory) {
  auto policy = hopper_policy(9);
  Actor a(envs::make_env("Hopper"), 42);
  Actor b(envs::make_env("Hopper"), 42);
  auto ba = a.sample(policy, 30, 0);
  auto bb = b.sample(policy, 30, 0);
  EXPECT_EQ(ba.obs.vec(), bb.obs.vec());
  EXPECT_EQ(ba.rewards.vec(), bb.rewards.vec());
}

TEST(Actor, DifferentSeedsDiverge) {
  auto policy = hopper_policy(9);
  Actor a(envs::make_env("Hopper"), 1);
  Actor b(envs::make_env("Hopper"), 2);
  EXPECT_NE(a.sample(policy, 30, 0).rewards.vec(),
            b.sample(policy, 30, 0).rewards.vec());
}

TEST(Actor, EvaluateEpisodeReturnsFiniteReward) {
  Actor actor(envs::make_env("Hopper"), 6);
  auto policy = hopper_policy();
  const double r = actor.evaluate_episode(policy, 17);
  EXPECT_TRUE(std::isfinite(r));
}

TEST(EvaluatePolicy, AveragesEpisodes) {
  auto env = envs::make_env("Hopper");
  auto policy = hopper_policy(11);
  const double r = evaluate_policy(*env, policy, 3, 5);
  EXPECT_TRUE(std::isfinite(r));
  // Deterministic across identical calls.
  EXPECT_DOUBLE_EQ(r, evaluate_policy(*env, policy, 3, 5));
}

TEST(Actor, ZeroHorizonThrows) {
  Actor actor(envs::make_env("Hopper"), 7);
  auto policy = hopper_policy();
  EXPECT_THROW(actor.sample(policy, 0, 0), Error);
}

}  // namespace
}  // namespace stellaris::rl
