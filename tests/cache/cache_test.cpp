#include "cache/distributed_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/error.hpp"

namespace stellaris::cache {
namespace {

Bytes bytes_of(std::initializer_list<std::uint8_t> v) { return Bytes(v); }

/// Materialize a read's span view for content comparisons.
Bytes read_bytes(const CacheValue& v) {
  return Bytes(v.bytes().begin(), v.bytes().end());
}

TEST(Cache, PutGetRoundTrip) {
  DistributedCache cache;
  cache.put("k", bytes_of({1, 2, 3}));
  auto v = cache.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(read_bytes(*v), bytes_of({1, 2, 3}));
  EXPECT_EQ(v->version, 1u);
  EXPECT_EQ(v->size_bytes(), 3u);
}

TEST(Cache, MissingKeyIsNullopt) {
  DistributedCache cache;
  EXPECT_FALSE(cache.get("nope").has_value());
  EXPECT_THROW(cache.get_or_throw("nope"), CacheError);
}

TEST(Cache, VersionsIncrementPerKey) {
  DistributedCache cache;
  EXPECT_EQ(cache.put("a", Bytes{}), 1u);
  EXPECT_EQ(cache.put("a", Bytes{}), 2u);
  EXPECT_EQ(cache.put("b", Bytes{}), 1u);
  EXPECT_EQ(cache.version("a"), 2u);
  EXPECT_EQ(cache.version("missing"), 0u);
}

TEST(Cache, OverwriteReplacesValue) {
  DistributedCache cache;
  cache.put("k", bytes_of({1}));
  cache.put("k", bytes_of({9, 9}));
  EXPECT_EQ(read_bytes(*cache.get("k")), bytes_of({9, 9}));
  EXPECT_EQ(cache.resident_bytes(), 2u);
}

TEST(Cache, EraseRemoves) {
  DistributedCache cache;
  cache.put("k", bytes_of({1, 2}));
  EXPECT_TRUE(cache.erase("k"));
  EXPECT_FALSE(cache.erase("k"));
  EXPECT_FALSE(cache.contains("k"));
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

TEST(Cache, PrefixScanIsSortedAndScoped) {
  DistributedCache cache;
  cache.put("traj/2", Bytes{});
  cache.put("traj/10", Bytes{});
  cache.put("grad/1", Bytes{});
  cache.put("traj/1", Bytes{});
  auto keys = cache.keys_with_prefix("traj/");
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "traj/1");   // lexicographic
  EXPECT_EQ(keys[1], "traj/10");
  EXPECT_EQ(keys[2], "traj/2");
}

TEST(Cache, ErasePrefixRemovesAllMatches) {
  DistributedCache cache;
  cache.put("traj/1", bytes_of({1}));
  cache.put("traj/2", bytes_of({2}));
  cache.put("grad/1", bytes_of({3}));
  EXPECT_EQ(cache.erase_prefix("traj/"), 2u);
  EXPECT_EQ(cache.num_keys(), 1u);
  EXPECT_TRUE(cache.contains("grad/1"));
}

TEST(Cache, StatsTrackTraffic) {
  DistributedCache cache;
  cache.put("k", bytes_of({1, 2, 3, 4}));
  (void)cache.get("k");
  (void)cache.get("absent");
  auto s = cache.stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.bytes_written, 4u);
  EXPECT_EQ(s.bytes_read, 4u);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().puts, 0u);
}

// ---- Zero-copy payload plane ----

TEST(Cache, ReadAliasesTheStoredPayloadBuffer) {
  DistributedCache cache;
  Bytes payload(1024, 0xab);
  const std::uint8_t* heap_block = payload.data();
  cache.put("k", std::move(payload));
  // The read's view points into the very heap block the writer filled:
  // no byte was copied on the write or the read path.
  auto v = cache.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->bytes().data(), heap_block);
  // Concurrent readers share one payload (refcount, not duplication).
  auto v2 = cache.get("k");
  EXPECT_EQ(v2->payload.get(), v->payload.get());
  EXPECT_GE(v->payload.use_count(), 3);  // store + two readers
}

TEST(Cache, ViewOutlivesOverwriteAndErase) {
  DistributedCache cache;
  cache.put("k", bytes_of({1, 2, 3}));
  auto v = cache.get("k");
  cache.put("k", bytes_of({9}));  // overwrite replaces the entry's pointer
  cache.erase("k");
  // The old snapshot is still alive and unchanged through our refcount.
  EXPECT_EQ(read_bytes(*v), bytes_of({1, 2, 3}));
}

TEST(Cache, PutPayloadStoresWithoutCopy) {
  DistributedCache cache;
  auto payload = std::make_shared<const Bytes>(bytes_of({4, 5, 6}));
  cache.put("k", payload);
  auto v = cache.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->payload.get(), payload.get());
}

// ---- Accounting: exactly one bump per logical read on every path ----

TEST(Cache, BytesReadCountsEachLogicalReadOnceAcrossAllPaths) {
  DistributedCache cache;
  sim::Engine engine;
  cache.put("k", Bytes(10, 1));

  (void)cache.get("k");                                             // 1
  (void)cache.get_or_throw("k");                                    // 2
  (void)cache.get_blocking("k", 0, std::chrono::milliseconds(5));   // 3
  (void)cache.get_blocking("k", 0, engine, 5.0);                    // 4
  cache.get_async("k", 0, engine, 5.0, [](auto) {});                // 5
  engine.run();
  // 6: waiter satisfied by a future put (the wake-up is the read).
  cache.get_async("k", 1, engine, 5.0, [](auto) {});
  cache.put("k", Bytes(10, 2));
  engine.run();

  auto s = cache.stats();
  EXPECT_EQ(s.hits, 6u);
  EXPECT_EQ(s.bytes_read, 60u);
  // Unsatisfied paths bump misses, never bytes_read.
  (void)cache.get("absent");
  (void)cache.get_blocking("k", 99, engine, 1.0);
  EXPECT_EQ(cache.stats().bytes_read, 60u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

// ---- Sharding ----

TEST(Cache, ShardCountDoesNotChangeObservableState) {
  // Identical operation sequences must produce identical observable state
  // (keys, versions, stats, sizes) for ANY stripe count — the determinism
  // contract that keeps figures bit-identical.
  auto run = [](std::size_t shards) {
    DistributedCache cache(shards);
    for (int i = 0; i < 40; ++i)
      cache.put("traj/" + std::to_string(i % 13),
                Bytes(static_cast<std::size_t>(i % 7), 0x5a));
    cache.put("policy/latest", Bytes(64, 1));
    cache.put("policy/latest", Bytes(64, 2));
    (void)cache.get("policy/latest");
    (void)cache.get("traj/3");
    (void)cache.get("traj/404");
    cache.erase("traj/5");
    cache.erase_prefix("grad/");
    struct Observed {
      std::vector<std::string> keys;
      std::vector<std::uint64_t> versions;
      std::size_t num_keys, resident;
      CacheStats stats;
    } o;
    o.keys = cache.keys_with_prefix("");
    for (const auto& k : o.keys) o.versions.push_back(cache.version(k));
    o.num_keys = cache.num_keys();
    o.resident = cache.resident_bytes();
    o.stats = cache.stats();
    return o;
  };
  const auto base = run(1);
  for (std::size_t shards : {2u, 3u, 8u, 64u}) {
    const auto o = run(shards);
    EXPECT_EQ(o.keys, base.keys) << shards << " shards";
    EXPECT_EQ(o.versions, base.versions) << shards << " shards";
    EXPECT_EQ(o.num_keys, base.num_keys) << shards << " shards";
    EXPECT_EQ(o.resident, base.resident) << shards << " shards";
    EXPECT_EQ(o.stats.puts, base.stats.puts) << shards << " shards";
    EXPECT_EQ(o.stats.gets, base.stats.gets) << shards << " shards";
    EXPECT_EQ(o.stats.hits, base.stats.hits) << shards << " shards";
    EXPECT_EQ(o.stats.misses, base.stats.misses) << shards << " shards";
    EXPECT_EQ(o.stats.erases, base.stats.erases) << shards << " shards";
    EXPECT_EQ(o.stats.bytes_written, base.stats.bytes_written)
        << shards << " shards";
    EXPECT_EQ(o.stats.bytes_read, base.stats.bytes_read)
        << shards << " shards";
  }
}

TEST(Cache, SingleShardStillWorks) {
  DistributedCache cache(1);
  EXPECT_EQ(cache.num_shards(), 1u);
  cache.put("a", bytes_of({1}));
  cache.put("b", bytes_of({2}));
  EXPECT_EQ(cache.num_keys(), 2u);
  EXPECT_EQ(read_bytes(*cache.get("a")), bytes_of({1}));
}

TEST(Cache, HammerMixedOpsAcrossStripes) {
  // TSan target: readers, writers, blockers, and erasers racing across all
  // stripes (hot shared keys + thread-private keys), including blocking
  // reads that time out while other stripes are being written.
  DistributedCache cache(4);
  constexpr int kThreads = 8;
  constexpr int kOps = 300;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &go, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kOps; ++i) {
        const std::string hot = "hot/" + std::to_string((i / 5) % 5);
        const std::string mine =
            "t" + std::to_string(t) + "/" + std::to_string(i);
        switch (i % 5) {
          case 0:
            cache.put(hot, Bytes(64, static_cast<std::uint8_t>(t)));
            break;
          case 1:
            cache.put(mine, Bytes(16, static_cast<std::uint8_t>(i)));
            break;
          case 2:
            if (auto v = cache.get(hot)) {
              // Touch the shared payload after the lock is released.
              volatile std::uint8_t sink = v->bytes().empty()
                                               ? std::uint8_t{0}
                                               : v->bytes().front();
              (void)sink;
            }
            break;
          case 3:
            (void)cache.get_blocking(hot, /*min_version=*/0,
                                     std::chrono::milliseconds(1));
            break;
          default:
            cache.erase(mine);
            break;
        }
      }
    });
  }
  go.store(true);
  for (auto& th : threads) th.join();
  // Sanity: the cache is still coherent after the storm.
  auto s = cache.stats();
  EXPECT_EQ(s.puts, kThreads * kOps * 2u / 5u);
  EXPECT_EQ(cache.keys_with_prefix("hot/").size(), 5u);
}

TEST(Cache, BlockingGetReturnsExistingNewValue) {
  DistributedCache cache;
  cache.put("k", bytes_of({5}));
  auto v = cache.get_blocking("k", 0, std::chrono::milliseconds(10));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 1u);
}

TEST(Cache, BlockingGetTimesOutOnStaleVersion) {
  DistributedCache cache;
  cache.put("k", bytes_of({5}));
  // Demand version > 1, nobody writes: timeout.
  auto v = cache.get_blocking("k", 1, std::chrono::milliseconds(20));
  EXPECT_FALSE(v.has_value());
}

TEST(Cache, BlockingGetWakesOnWrite) {
  DistributedCache cache;
  std::thread writer([&cache] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cache.put("k", bytes_of({7}));
  });
  auto v = cache.get_blocking("k", 0, std::chrono::seconds(5));
  writer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(read_bytes(*v), bytes_of({7}));
}

TEST(Cache, ConcurrentWritersKeepCountsConsistent) {
  DistributedCache cache;
  constexpr int kThreads = 4;
  constexpr int kWrites = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kWrites; ++i)
        cache.put("key/" + std::to_string(t) + "/" + std::to_string(i),
                  Bytes(8, static_cast<std::uint8_t>(i)));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.num_keys(), kThreads * kWrites);
  EXPECT_EQ(cache.stats().puts, kThreads * kWrites);
  EXPECT_EQ(cache.resident_bytes(), kThreads * kWrites * 8u);
}

TEST(Cache, ConcurrentSameKeyVersionsAreDense) {
  DistributedCache cache;
  constexpr int kThreads = 4;
  constexpr int kWrites = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&cache] {
      for (int i = 0; i < kWrites; ++i) cache.put("hot", Bytes{1});
    });
  for (auto& th : threads) th.join();
  // Every write bumped the version exactly once.
  EXPECT_EQ(cache.version("hot"), kThreads * kWrites);
}

TEST(Cache, ClearEmptiesStore) {
  DistributedCache cache;
  cache.put("a", bytes_of({1}));
  cache.put("b", bytes_of({2}));
  cache.clear();
  EXPECT_EQ(cache.num_keys(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

// ---- Virtual-time reads (simulation-driven callers) ----

TEST(Cache, VirtualBlockingGetHitsImmediately) {
  DistributedCache cache;
  sim::Engine engine;
  cache.put("k", bytes_of({1, 2}));
  const auto v = cache.get_blocking("k", 0, engine, 5.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);  // no virtual time consumed
}

TEST(Cache, VirtualBlockingGetRespectsMinVersion) {
  DistributedCache cache;
  sim::Engine engine;
  cache.put("k", bytes_of({1}));
  // Version 1 is not > 1: deterministic miss, counted as a timeout.
  EXPECT_FALSE(cache.get_blocking("k", 1, engine, 5.0).has_value());
  cache.put("k", bytes_of({2}));
  const auto v = cache.get_blocking("k", 1, engine, 5.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 2u);
}

TEST(Cache, AsyncGetFiresWhenKeyIsPublished) {
  DistributedCache cache;
  sim::Engine engine;
  std::optional<CacheValue> got;
  double fired_at = -1.0;
  cache.get_async("k", 0, engine, 10.0, [&](auto v) {
    got = std::move(v);
    fired_at = engine.now();
  });
  EXPECT_EQ(cache.pending_waiters(), 1u);
  engine.schedule_at(2.0, [&] { cache.put("k", bytes_of({7})); });
  engine.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(read_bytes(*got), bytes_of({7}));
  EXPECT_DOUBLE_EQ(fired_at, 2.0);  // same timestamp as the put
  EXPECT_EQ(cache.pending_waiters(), 0u);
}

TEST(Cache, AsyncGetAlreadySatisfiedFiresAtCurrentTime) {
  DistributedCache cache;
  sim::Engine engine;
  cache.put("k", bytes_of({1}));
  bool fired = false;
  cache.get_async("k", 0, engine, 10.0, [&](auto v) {
    fired = true;
    EXPECT_TRUE(v.has_value());
  });
  EXPECT_FALSE(fired);  // delivered via the engine, not inline
  engine.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Cache, AsyncGetTimesOutAtVirtualDeadline) {
  DistributedCache cache;
  sim::Engine engine;
  std::optional<CacheValue> got = CacheValue{};  // sentinel
  double fired_at = -1.0;
  cache.get_async("missing", 0, engine, 3.0, [&](auto v) {
    got = std::move(v);
    fired_at = engine.now();
  });
  engine.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
  EXPECT_EQ(cache.pending_waiters(), 0u);
}

TEST(Cache, AsyncGetPutCancelsTheDeadline) {
  DistributedCache cache;
  sim::Engine engine;
  int fires = 0;
  cache.get_async("k", 0, engine, 3.0, [&](auto) { ++fires; });
  engine.schedule_at(1.0, [&] { cache.put("k", bytes_of({1})); });
  engine.run();
  EXPECT_EQ(fires, 1);                  // deadline did not also fire
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);  // nor did it drag the clock to 3.0
}

TEST(Cache, PutWakesOnlyMatchingWaiters) {
  DistributedCache cache;
  sim::Engine engine;
  int a_fires = 0, b_fires = 0;
  cache.get_async("a", 0, engine, 0.0, [&](auto) { ++a_fires; });
  cache.get_async("b", 0, engine, 0.0, [&](auto) { ++b_fires; });
  cache.put("a", bytes_of({1}));
  engine.run();
  EXPECT_EQ(a_fires, 1);
  EXPECT_EQ(b_fires, 0);
  EXPECT_EQ(cache.pending_waiters(), 1u);
}

}  // namespace
}  // namespace stellaris::cache
