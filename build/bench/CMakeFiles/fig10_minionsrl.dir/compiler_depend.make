# Empty compiler generated dependencies file for fig10_minionsrl.
# This may be replaced when dependencies are built.
