#include "rl/impact.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/distributions.hpp"
#include "util/rng.hpp"

namespace stellaris::rl {
namespace {

nn::ActorCritic make_model(std::uint64_t seed) {
  return nn::ActorCritic(nn::ObsSpec::vector(4), nn::ActionKind::kContinuous,
                         2, nn::NetworkSpec::mujoco(8), seed);
}

SampleBatch sample_batch(nn::ActorCritic& behaviour, Rng& rng,
                         std::size_t n) {
  SampleBatch b;
  b.action_kind = nn::ActionKind::kContinuous;
  b.obs = Tensor::randn({n, 4}, rng);
  Tensor mean = behaviour.policy_forward(b.obs);
  b.actions_cont = nn::gaussian_sample(mean, *behaviour.log_std(), rng);
  b.behaviour_log_probs =
      nn::gaussian_log_prob(mean, *behaviour.log_std(), b.actions_cont);
  b.rewards = Tensor::randn({n}, rng);
  b.dones = Tensor({n});
  b.values = behaviour.value_forward(b.obs);
  b.bootstrap_value = 0.0f;
  return b;
}

TEST(Impact, TargetEqualsModelGivesUnitRatio) {
  auto model = make_model(1);
  auto target = make_model(2);
  target.set_flat_params(model.flat_params());
  Rng rng(1);
  auto batch = sample_batch(model, rng, 32);
  model.zero_grad();
  auto stats = impact_compute_gradients(model, target, batch, ImpactConfig{});
  EXPECT_NEAR(stats.mean_ratio, 1.0, 1e-4);
  EXPECT_NEAR(stats.kl, 0.0, 1e-5);
}

TEST(Impact, ProducesNonzeroFiniteGradients) {
  auto model = make_model(3);
  auto target = make_model(4);
  Rng rng(3);
  auto batch = sample_batch(model, rng, 64);
  model.zero_grad();
  (void)impact_compute_gradients(model, target, batch, ImpactConfig{});
  double norm = 0.0;
  for (float g : model.flat_grads()) {
    EXPECT_TRUE(std::isfinite(g));
    norm += std::abs(g);
  }
  EXPECT_GT(norm, 0.0);
}

TEST(Impact, DoesNotNeedGae) {
  auto model = make_model(5);
  auto target = make_model(6);
  Rng rng(5);
  auto batch = sample_batch(model, rng, 16);
  ASSERT_FALSE(batch.has_advantages());  // V-trace supplies them internally
  model.zero_grad();
  EXPECT_NO_THROW(
      impact_compute_gradients(model, target, batch, ImpactConfig{}));
}

TEST(Impact, ValueGradientReducesVtraceLoss) {
  auto model = make_model(7);
  auto target = make_model(8);
  target.set_flat_params(model.flat_params());
  Rng rng(7);
  auto batch = sample_batch(model, rng, 64);
  model.zero_grad();
  ImpactConfig cfg;
  auto s0 = impact_compute_gradients(model, target, batch, cfg);
  auto params = model.flat_params();
  auto grads = model.flat_grads();
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i] -= 0.005f * grads[i];
  model.set_flat_params(params);
  model.zero_grad();
  auto s1 = impact_compute_gradients(model, target, batch, cfg);
  EXPECT_LT(s1.value_loss, s0.value_loss);
}

TEST(Impact, SegmentedBatchesDoNotLeakAcrossSeams) {
  auto model = make_model(9);
  auto target = make_model(10);
  target.set_flat_params(model.flat_params());
  Rng rng(9);
  auto a = sample_batch(model, rng, 16);
  auto b = sample_batch(model, rng, 16);
  auto joint = SampleBatch::concat({a, b});
  ASSERT_EQ(joint.segment_views().size(), 2u);
  model.zero_grad();
  auto joint_stats =
      impact_compute_gradients(model, target, joint, ImpactConfig{});
  EXPECT_TRUE(std::isfinite(joint_stats.policy_loss));
}

TEST(Impact, RespectsTruncationCap) {
  auto model = make_model(11);
  auto target = make_model(12);  // far target → wide ratio spread
  Rng rng(11);
  auto batch = sample_batch(model, rng, 128);
  model.zero_grad();
  auto stats =
      impact_compute_gradients(model, target, batch, ImpactConfig{}, 1e-6);
  EXPECT_EQ(stats.clip_fraction, 1.0);
}

}  // namespace
}  // namespace stellaris::rl
