// IMPACT (Luo et al., ICLR 2020): importance-weighted asynchronous
// training with a clipped *target-network* surrogate on top of V-trace
// corrections — the paper's off-policy integration baseline (§VIII-B1).
//
// Faithfulness notes (documented substitutions):
//  - The surrogate ratio is π_current / π_target (IMPACT's key trick), with
//    V-trace advantages computed against the behaviour policy μ.
//  - The target network is refreshed by copying current weights every
//    `target_update_freq` updates (Table III lists 1.0).
#pragma once

#include <limits>
#include <memory>

#include "nn/actor_critic.hpp"
#include "rl/ppo.hpp"
#include "rl/sample_batch.hpp"

namespace stellaris::rl {

/// Table III, IMPACT column.
struct ImpactConfig {
  double lr = 5e-4;
  double gamma = 0.99;
  double clip_param = 0.4;
  double kl_coeff = 1.0;
  double kl_target = 0.01;
  double entropy_coeff = 0.01;
  double vf_coeff = 1.0;
  double vtrace_rho_bar = 1.0;
  double vtrace_c_bar = 1.0;
  double max_grad_norm = 10.0;
  std::size_t target_update_freq = 1;  ///< updates between target refreshes
  std::size_t sgd_iters = 1;  ///< local SGD epochs per trajectory batch
  double log_std_grad_scale = 0.25;  ///< see PpoConfig::log_std_grad_scale
};

/// Accumulate IMPACT gradients for `batch` into `model`, using `target` for
/// the surrogate ratio. Value targets / advantages come from V-trace, so the
/// batch does NOT need GAE. `ratio_cap` is the Stellaris truncation ρ.
LossStats impact_compute_gradients(
    nn::ActorCritic& model, nn::ActorCritic& target, const SampleBatch& batch,
    const ImpactConfig& cfg,
    double ratio_cap = std::numeric_limits<double>::infinity());

}  // namespace stellaris::rl
