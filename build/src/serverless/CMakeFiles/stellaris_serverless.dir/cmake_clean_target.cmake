file(REMOVE_RECURSE
  "libstellaris_serverless.a"
)
