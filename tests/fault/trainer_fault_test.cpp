// End-to-end fault tolerance of the training loops: runs complete under
// injected failures, replay deterministically for a fixed (plan, seed), and
// a zero-fault plan leaves results bit-identical to a plan-free run.
#include <gtest/gtest.h>

#include "baselines/sync_trainer.hpp"
#include "core/stellaris_trainer.hpp"

namespace stellaris::core {
namespace {

TrainConfig tiny_config() {
  TrainConfig cfg;
  cfg.env_name = "Hopper";
  cfg.rounds = 8;
  cfg.num_actors = 4;
  cfg.horizon = 32;
  cfg.trajs_per_learner = 2;
  cfg.network_width = 8;
  cfg.eval_episodes = 1;
  cfg.seed = 7;
  return cfg;
}

TrainConfig faulty_config(double crash_prob = 0.15) {
  auto cfg = tiny_config();
  cfg.faults.config.crash_prob = crash_prob;
  cfg.faults.config.straggler_prob = 0.1;
  cfg.faults.config.straggler_mult = 3.0;
  return cfg;
}

void expect_identical(const TrainResult& a, const TrainResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].time_s, b.rounds[i].time_s);
    EXPECT_DOUBLE_EQ(a.rounds[i].reward, b.rounds[i].reward);
    EXPECT_EQ(a.rounds[i].group_size, b.rounds[i].group_size);
  }
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  EXPECT_DOUBLE_EQ(a.total_cost_usd, b.total_cost_usd);
}

TEST(TrainerFault, ZeroFaultPlanIsBitIdenticalToNoPlan) {
  // Explicitly-zero fault knobs must not perturb a single RNG stream.
  auto with_plan = tiny_config();
  with_plan.faults.config.seed = 123;  // seed alone must not matter
  expect_identical(run_training(tiny_config()), run_training(with_plan));
}

TEST(TrainerFault, FaultedRunCompletesAllRounds) {
  const auto result = run_training(faulty_config());
  EXPECT_EQ(result.rounds.size(), 8u);
  EXPECT_GT(result.faults.crashes + result.faults.stragglers, 0u);
  EXPECT_EQ(result.faults.failed_invocations, result.faults.crashes);
  EXPECT_GT(result.faults.retries, 0u);
  EXPECT_GT(result.faults.wasted_seconds, 0.0);
  EXPECT_GT(result.faults.checkpoints, 0u);  // periodic checkpointing is on
}

TEST(TrainerFault, SamePlanSameSeedReplaysIdentically) {
  const auto a = run_training(faulty_config());
  const auto b = run_training(faulty_config());
  expect_identical(a, b);
  EXPECT_EQ(a.faults.crashes, b.faults.crashes);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_DOUBLE_EQ(a.faults.wasted_cost_usd, b.faults.wasted_cost_usd);
}

TEST(TrainerFault, DifferentFaultSeedsDiverge) {
  auto a_cfg = faulty_config(0.3);
  auto b_cfg = faulty_config(0.3);
  b_cfg.faults.config.seed = a_cfg.faults.config.seed + 1;
  const auto a = run_training(a_cfg);
  const auto b = run_training(b_cfg);
  EXPECT_NE(a.total_time_s, b.total_time_s);
}

TEST(TrainerFault, FaultsCostTimeAndMoney) {
  const auto clean = run_training(tiny_config());
  const auto faulty = run_training(faulty_config(0.25));
  EXPECT_GT(faulty.total_time_s, clean.total_time_s);
  EXPECT_GT(faulty.faults.wasted_cost_usd, 0.0);
  // Learning still happens: all rounds complete with real updates.
  EXPECT_EQ(faulty.rounds.size(), clean.rounds.size());
}

TEST(TrainerFault, ScriptedReclaimIsSurvived) {
  auto cfg = tiny_config();
  cfg.faults.schedule.push_back(
      {0.2, fault::FaultKind::kVmReclaim, -1, 0.0});
  const auto result = run_training(cfg);
  EXPECT_EQ(result.rounds.size(), 8u);
  EXPECT_EQ(result.faults.vm_reclaims, 1u);
  EXPECT_GT(result.faults.failed_invocations, 0u);  // killed in-flight work
}

TEST(TrainerFault, ParameterFunctionCrashRestoresFromCheckpoint) {
  // Script a crash trap aimed solely at the parameter function, with
  // retries disabled, so the recovery path (checkpoint restore) must run.
  auto cfg = tiny_config();
  cfg.retry.max_retries = 0;
  cfg.checkpoint_interval = 1;
  cfg.faults.schedule.push_back(
      {0.2, fault::FaultKind::kCrash,
       int(serverless::FnKind::kParameter), 0.5});
  const auto result = run_training(cfg);
  EXPECT_EQ(result.rounds.size(), 8u);
  EXPECT_EQ(result.faults.giveups, 1u);
  EXPECT_EQ(result.faults.restores, 1u);
  EXPECT_GT(result.faults.checkpoints, 0u);
}

TEST(SyncTrainerFault, BarrierStallsUnderFaults) {
  baselines::SyncConfig clean_cfg;
  clean_cfg.base = tiny_config();
  clean_cfg.num_learners = 2;
  baselines::SyncConfig faulty_cfg = clean_cfg;
  faulty_cfg.base.faults.config.crash_prob = 0.2;

  const auto clean = baselines::run_sync_training(clean_cfg);
  const auto faulty = baselines::run_sync_training(faulty_cfg);
  // Same learning trajectory (the numerics are fault-independent)...
  ASSERT_EQ(clean.rounds.size(), faulty.rounds.size());
  EXPECT_DOUBLE_EQ(clean.rounds.back().reward, faulty.rounds.back().reward);
  // ...but every barrier waits out its slowest retry chain and the fleet
  // bills for the stall.
  EXPECT_GT(faulty.total_time_s, clean.total_time_s);
  EXPECT_GT(faulty.total_cost_usd, clean.total_cost_usd);
  EXPECT_GT(faulty.faults.retries, 0u);
  EXPECT_GT(faulty.faults.wasted_seconds, 0.0);
}

TEST(SyncTrainerFault, FaultedSyncRunIsDeterministic) {
  baselines::SyncConfig cfg;
  cfg.base = tiny_config();
  cfg.base.faults.config.crash_prob = 0.2;
  cfg.num_learners = 2;
  const auto a = baselines::run_sync_training(cfg);
  const auto b = baselines::run_sync_training(cfg);
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  EXPECT_DOUBLE_EQ(a.total_cost_usd, b.total_cost_usd);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
}

}  // namespace
}  // namespace stellaris::core
