# Empty compiler generated dependencies file for fig14_latency.
# This may be replaced when dependencies are built.
