# Empty dependencies file for stellaris_sim.
# This may be replaced when dependencies are built.
