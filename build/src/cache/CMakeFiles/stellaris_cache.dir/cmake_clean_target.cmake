file(REMOVE_RECURSE
  "libstellaris_cache.a"
)
