#include "util/serialize.hpp"

#include <gtest/gtest.h>

namespace stellaris {
namespace {

TEST(Serialize, PrimitiveRoundTrip) {
  ByteWriter w;
  w.put_u8(7);
  w.put_u32(123456u);
  w.put_u64(0xdeadbeefcafef00dULL);
  w.put_i64(-42);
  w.put_f32(3.25f);
  w.put_f64(-2.5);
  w.put_string("hello stellaris");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 123456u);
  EXPECT_EQ(r.get_u64(), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_FLOAT_EQ(r.get_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.get_f64(), -2.5);
  EXPECT_EQ(r.get_string(), "hello stellaris");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, VectorRoundTrip) {
  ByteWriter w;
  std::vector<float> fv = {1.0f, -2.0f, 3.5f};
  std::vector<double> dv = {0.1, 0.2};
  std::vector<std::uint64_t> uv = {9, 8, 7, 6};
  w.put_f32_vector(fv);
  w.put_f64_vector(dv);
  w.put_u64_vector(uv);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_f32_vector(), fv);
  EXPECT_EQ(r.get_f64_vector(), dv);
  EXPECT_EQ(r.get_u64_vector(), uv);
}

TEST(Serialize, EmptyVectorsAndStrings) {
  ByteWriter w;
  w.put_string("");
  w.put_f32_vector({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.get_f32_vector().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TagMismatchThrows) {
  ByteWriter w;
  w.put_u32(5);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_f64(), Error);
}

TEST(Serialize, OverrunThrows) {
  ByteWriter w;
  w.put_u32(5);
  ByteReader r(w.bytes());
  (void)r.get_u32();
  EXPECT_THROW(r.get_u32(), Error);
}

TEST(Serialize, TruncatedPayloadThrows) {
  ByteWriter w;
  w.put_f32_vector({1.0f, 2.0f, 3.0f});
  auto bytes = w.take();
  bytes.resize(bytes.size() - 4);  // chop the last float
  ByteReader r(bytes);
  EXPECT_THROW(r.get_f32_vector(), Error);
}

TEST(Serialize, SizeTracksPayload) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.put_f32_vector(std::vector<float>(100, 0.0f));
  // tag + u64 length + 100 floats
  EXPECT_EQ(w.size(), 1 + 8 + 400u);
}

TEST(Serialize, RemainingDecreasesAsRead) {
  ByteWriter w;
  w.put_u8(1);
  w.put_u8(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 2u);
  (void)r.get_u8();
  EXPECT_EQ(r.remaining(), 1u);
}

}  // namespace
}  // namespace stellaris
