#include "util/serialize.hpp"

namespace stellaris {

namespace {
template <typename T>
void append_raw(std::vector<std::uint8_t>& buf, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}
}  // namespace

void ByteWriter::put_u32(std::uint32_t v) {
  buf_.push_back(wire::kU32);
  append_raw(buf_, v);
}

void ByteWriter::put_u64(std::uint64_t v) {
  buf_.push_back(wire::kU64);
  append_raw(buf_, v);
}

void ByteWriter::put_i64(std::int64_t v) {
  buf_.push_back(wire::kI64);
  append_raw(buf_, v);
}

void ByteWriter::put_f32(float v) {
  buf_.push_back(wire::kF32);
  append_raw(buf_, v);
}

void ByteWriter::put_f64(double v) {
  buf_.push_back(wire::kF64);
  append_raw(buf_, v);
}

void ByteWriter::put_string(const std::string& s) {
  buf_.push_back(wire::kString);
  append_raw(buf_, static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::put_f32_vector(const std::vector<float>& v) {
  buf_.push_back(wire::kF32Vec);
  append_raw(buf_, static_cast<std::uint64_t>(v.size()));
  if (v.empty()) return;  // null data() + 0 is UB in pointer arithmetic
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  buf_.insert(buf_.end(), p, p + v.size() * sizeof(float));
}

void ByteWriter::put_f64_vector(const std::vector<double>& v) {
  buf_.push_back(wire::kF64Vec);
  append_raw(buf_, static_cast<std::uint64_t>(v.size()));
  if (v.empty()) return;
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  buf_.insert(buf_.end(), p, p + v.size() * sizeof(double));
}

void ByteWriter::put_u64_vector(const std::vector<std::uint64_t>& v) {
  buf_.push_back(wire::kU64Vec);
  append_raw(buf_, static_cast<std::uint64_t>(v.size()));
  if (v.empty()) return;
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  buf_.insert(buf_.end(), p, p + v.size() * sizeof(std::uint64_t));
}

namespace {
void expect_tag(std::uint8_t got, std::uint8_t want, const char* what) {
  if (got != want)
    throw Error(std::string("wire tag mismatch decoding ") + what +
                ": got 0x" + std::to_string(got));
}
}  // namespace

std::uint8_t ByteReader::get_u8() { return raw<std::uint8_t>(); }

std::uint32_t ByteReader::get_u32() {
  expect_tag(get_u8(), wire::kU32, "u32");
  return raw<std::uint32_t>();
}

std::uint64_t ByteReader::get_u64() {
  expect_tag(get_u8(), wire::kU64, "u64");
  return raw<std::uint64_t>();
}

std::int64_t ByteReader::get_i64() {
  expect_tag(get_u8(), wire::kI64, "i64");
  return raw<std::int64_t>();
}

float ByteReader::get_f32() {
  expect_tag(get_u8(), wire::kF32, "f32");
  return raw<float>();
}

double ByteReader::get_f64() {
  expect_tag(get_u8(), wire::kF64, "f64");
  return raw<double>();
}

std::string ByteReader::get_string() {
  expect_tag(get_u8(), wire::kString, "string");
  const auto n = raw<std::uint32_t>();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<float> ByteReader::get_f32_vector() {
  expect_tag(get_u8(), wire::kF32Vec, "f32vec");
  const auto n = raw<std::uint64_t>();
  need(n * sizeof(float));
  std::vector<float> v(n);
  if (n != 0) std::memcpy(v.data(), data_ + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
  return v;
}

std::vector<double> ByteReader::get_f64_vector() {
  expect_tag(get_u8(), wire::kF64Vec, "f64vec");
  const auto n = raw<std::uint64_t>();
  need(n * sizeof(double));
  std::vector<double> v(n);
  if (n != 0) std::memcpy(v.data(), data_ + pos_, n * sizeof(double));
  pos_ += n * sizeof(double);
  return v;
}

std::vector<std::uint64_t> ByteReader::get_u64_vector() {
  expect_tag(get_u8(), wire::kU64Vec, "u64vec");
  const auto n = raw<std::uint64_t>();
  need(n * sizeof(std::uint64_t));
  std::vector<std::uint64_t> v(n);
  if (n != 0)
    std::memcpy(v.data(), data_ + pos_, n * sizeof(std::uint64_t));
  pos_ += n * sizeof(std::uint64_t);
  return v;
}

}  // namespace stellaris
