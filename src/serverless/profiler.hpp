// Function profiler (§VII): Stellaris profiles the execution time and
// resource demand of parameter and learner functions during training and
// uses the estimates to pre-warm containers ahead of predicted invocations.
//
// The profiler ingests completed-invocation records, maintains per-kind
// duration statistics and an arrival-rate estimate, and answers the two
// questions the orchestrator asks:
//   - expected_duration(kind): how long will the next invocation run?
//   - recommended_prewarm(kind): how many containers should be kept warm
//     (Little's law: arrival rate × expected duration, with headroom)?
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "serverless/cost_meter.hpp"
#include "util/stats.hpp"

namespace stellaris::serverless {

class FunctionProfiler {
 public:
  /// `headroom` multiplies the Little's-law estimate so bursts don't cold
  /// start (the paper pre-warms "based on estimated completion time").
  explicit FunctionProfiler(double headroom = 1.25);

  /// Record a completed invocation.
  void record(FnKind kind, double start_time_s, double duration_s);

  std::size_t samples(FnKind kind) const;

  /// Mean observed duration; nullopt until the first sample.
  std::optional<double> expected_duration_s(FnKind kind) const;

  /// p-quantile of observed durations (for completion-time estimates).
  std::optional<double> duration_percentile_s(FnKind kind, double q) const;

  /// Observed arrival rate (invocations per second since the first record).
  double arrival_rate_hz(FnKind kind) const;

  /// Containers to keep warm: ceil(rate × duration × headroom); 0 until
  /// enough samples exist to estimate both.
  std::size_t recommended_prewarm(FnKind kind) const;

 private:
  struct PerKind {
    RunningStat durations;
    std::vector<double> duration_samples;
    double first_start = 0.0;
    double last_start = 0.0;
    std::size_t count = 0;
    // Live estimates exported as gauges ("profiler.<kind>.*").
    obs::Counter* m_samples = nullptr;
    obs::Gauge* m_mean_duration_s = nullptr;
    obs::Gauge* m_arrival_rate_hz = nullptr;
  };
  PerKind& bucket(FnKind kind);
  const PerKind& bucket(FnKind kind) const;

  double headroom_;
  PerKind learner_, parameter_, actor_;
};

}  // namespace stellaris::serverless
