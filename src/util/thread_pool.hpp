// Fixed-size work-queue thread pool.
//
// Used by the parallel actor driver (real concurrency, e.g. in examples and
// concurrency tests) — the benchmark harness itself runs on the
// deterministic virtual-time engine in src/sim/ instead, so figures are
// reproducible on any core count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace stellaris {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1 enforced).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace stellaris
