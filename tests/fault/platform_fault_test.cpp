// Fault plane behavior of the serverless platform: crashes bill partial
// work, retries recover, reclamations kill whole hosts, and a zero-fault
// injector leaves the timeline bit-identical.
#include <gtest/gtest.h>

#include "cache/distributed_cache.hpp"
#include "fault/fault_injector.hpp"
#include "serverless/platform.hpp"

namespace stellaris::serverless {
namespace {

ClusterSpec one_gpu_vm() {
  ClusterSpec spec;
  spec.vms = {{VmType::p3_2xlarge(), 1}};  // 1 host -> deterministic victim
  return spec;
}

struct Fixture {
  sim::Engine engine;
  ServerlessPlatform platform;
  fault::FaultInjector injector;

  explicit Fixture(fault::FaultPlan plan,
                   ClusterSpec cluster = ClusterSpec::regular())
      : platform(engine, std::move(cluster), LatencyModel{}, 1),
        injector(engine, std::move(plan)) {
    platform.set_fault_injector(&injector);
  }
};

ServerlessPlatform::InvokeOptions learner_opts(double compute) {
  ServerlessPlatform::InvokeOptions opts;
  opts.kind = FnKind::kLearner;
  opts.compute_s = compute;
  return opts;
}

TEST(PlatformFault, CrashFailsInvocationAndBillsPartialWork) {
  fault::FaultPlan plan;
  plan.schedule.push_back(
      {0.0, fault::FaultKind::kCrash, int(FnKind::kLearner), 0.5});
  Fixture f(plan);
  ServerlessPlatform::InvokeResult ok_result, crash_result;
  f.platform.invoke(learner_opts(2.0), [&](const auto& r) { crash_result = r; });
  f.engine.run();
  EXPECT_FALSE(crash_result.ok);
  EXPECT_EQ(crash_result.error, fault::ErrorKind::kCrash);
  EXPECT_GT(crash_result.billed_s, 0.0);

  // A clean invocation of the same shape runs longer and costs more: the
  // crash truncated the duration to the completed fraction.
  f.platform.invoke(learner_opts(2.0), [&](const auto& r) { ok_result = r; });
  f.engine.run();
  EXPECT_TRUE(ok_result.ok);
  EXPECT_LT(crash_result.billed_s, ok_result.billed_s);
  EXPECT_EQ(f.platform.costs().total_failed_invocations(), 1u);
  EXPECT_GT(f.platform.costs().total_wasted_cost(), 0.0);
}

TEST(PlatformFault, RetryingInvokeRecoversFromCrash) {
  fault::FaultPlan plan;
  plan.schedule.push_back(
      {0.0, fault::FaultKind::kCrash, int(FnKind::kLearner), 0.5});
  Fixture f(plan);
  fault::RetryPolicy policy;
  policy.jitter_frac = 0.0;
  ServerlessPlatform::InvokeResult result;
  f.platform.invoke_retrying(learner_opts(1.0), policy,
                             [&](const auto& r) { result = r; });
  f.engine.run();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_GT(result.retry_wait_s, 0.0);  // backoff between the attempts
  EXPECT_EQ(f.platform.retries(), 1u);
  EXPECT_EQ(f.platform.giveups(), 0u);
  // The failed first attempt still billed.
  EXPECT_GT(f.platform.costs().total_wasted_cost(), 0.0);
}

TEST(PlatformFault, RetryingInvokeReportsStartPerAttempt) {
  // on_start fires once per attempt — the hook a retried learner uses to
  // re-pull a FRESH policy snapshot instead of reusing the stale one.
  fault::FaultPlan plan;
  plan.schedule.push_back(
      {0.0, fault::FaultKind::kCrash, int(FnKind::kLearner), 0.5});
  Fixture f(plan);
  std::vector<double> starts;
  auto opts = learner_opts(1.0);
  opts.on_start = [&](double t) { starts.push_back(t); };
  f.platform.invoke_retrying(opts, fault::RetryPolicy{},
                             [](const auto&) {});
  f.engine.run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_GT(starts[1], starts[0]);
}

TEST(PlatformFault, RetriedPullsCountOneCacheReadPerAttempt) {
  // Each attempt's on_start pulls from the cache, so a retried invocation
  // reads the payload exactly attempts × once — no double-counting in the
  // crash/retry plumbing and no skipped accounting on the retried attempt.
  fault::FaultPlan plan;
  plan.schedule.push_back(
      {0.0, fault::FaultKind::kCrash, int(FnKind::kLearner), 0.5});
  Fixture f(plan);
  cache::DistributedCache cache;
  cache.put("policy/latest", cache::Bytes(128, 0x7f));
  auto opts = learner_opts(1.0);
  opts.on_start = [&](double) {
    (void)cache.get_blocking("policy/latest", 0, f.engine, 1.0);
  };
  ServerlessPlatform::InvokeResult result;
  f.platform.invoke_retrying(opts, fault::RetryPolicy{},
                             [&](const auto& r) { result = r; });
  f.engine.run();
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.attempts, 2u);
  const auto s = cache.stats();
  EXPECT_EQ(s.gets, result.attempts);
  EXPECT_EQ(s.hits, result.attempts);
  EXPECT_EQ(s.bytes_read, result.attempts * 128u);
}

TEST(PlatformFault, ExhaustedRetriesGiveUp) {
  fault::FaultPlan plan;
  for (int i = 0; i < 4; ++i)  // one trap per attempt (1 try + 3 retries)
    plan.schedule.push_back(
        {0.0, fault::FaultKind::kCrash, int(FnKind::kLearner), 0.5});
  Fixture f(plan);
  fault::RetryPolicy policy;  // max_retries = 3
  ServerlessPlatform::InvokeResult result;
  f.platform.invoke_retrying(learner_opts(1.0), policy,
                             [&](const auto& r) { result = r; });
  f.engine.run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, fault::ErrorKind::kCrash);
  EXPECT_EQ(result.attempts, 4u);
  EXPECT_EQ(f.platform.retries(), 3u);
  EXPECT_EQ(f.platform.giveups(), 1u);
}

TEST(PlatformFault, DeadlineCutsTheChainShort) {
  fault::FaultPlan plan;
  for (int i = 0; i < 4; ++i)
    plan.schedule.push_back(
        {0.0, fault::FaultKind::kCrash, int(FnKind::kLearner), 0.5});
  Fixture f(plan);
  fault::RetryPolicy policy;
  policy.base_backoff_s = 100.0;  // any backoff blows the deadline
  policy.max_backoff_s = 100.0;
  policy.jitter_frac = 0.0;
  policy.deadline_s = 5.0;
  ServerlessPlatform::InvokeResult result;
  f.platform.invoke_retrying(learner_opts(1.0), policy,
                             [&](const auto& r) { result = r; });
  f.engine.run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, fault::ErrorKind::kDeadline);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(f.platform.giveups(), 1u);
}

TEST(PlatformFault, VmReclamationKillsInFlightWork) {
  fault::FaultPlan plan;
  plan.schedule.push_back({1.0, fault::FaultKind::kVmReclaim, -1, 0.0});
  Fixture f(plan, one_gpu_vm());
  ASSERT_EQ(f.platform.vm_count(), 1u);
  ServerlessPlatform::InvokeResult result;
  f.platform.invoke(learner_opts(10.0), [&](const auto& r) { result = r; });
  f.engine.run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, fault::ErrorKind::kVmReclaim);
  // Killed at t = 1.0, well before its ~10 s of compute finished; the
  // consumed seconds still bill.
  EXPECT_DOUBLE_EQ(result.end_time_s, 1.0);
  EXPECT_GT(result.billed_s, 0.0);
  EXPECT_LT(result.billed_s, 5.0);
  EXPECT_EQ(f.injector.reclaims_fired(), 1u);
  EXPECT_EQ(f.platform.inflight(), 0u);
}

TEST(PlatformFault, ReclamationUnderQueueBacklogIsClean) {
  // Saturated regime: more submissions than the host's 4 learner slots, so
  // a queue backlog exists when the reclaim fires. The teardown must finish
  // (victims detached, every slot dead) before any queued work dispatches —
  // otherwise a fresh invocation lands on a slot the reclaim then kills,
  // and its completion releases a non-busy container.
  fault::FaultPlan plan;
  plan.schedule.push_back({1.0, fault::FaultKind::kVmReclaim, -1, 0.0});
  Fixture f(plan, one_gpu_vm());
  std::vector<ServerlessPlatform::InvokeResult> results;
  for (int i = 0; i < 8; ++i)
    f.platform.invoke(learner_opts(10.0),
                      [&](const auto& r) { results.push_back(r); });
  f.engine.run();
  ASSERT_EQ(results.size(), 8u);
  std::size_t reclaimed = 0, succeeded = 0;
  for (const auto& r : results) {
    if (r.ok)
      ++succeeded;
    else if (r.error == fault::ErrorKind::kVmReclaim)
      ++reclaimed;
  }
  // The 4 running invocations die with the host; the 4 queued ones dispatch
  // onto the replacement (cold) capacity afterwards and finish cleanly.
  EXPECT_EQ(reclaimed, 4u);
  EXPECT_EQ(succeeded, 4u);
  EXPECT_EQ(f.platform.inflight(), 0u);
  EXPECT_EQ(f.platform.queued(FnKind::kLearner), 0u);
}

TEST(PlatformFault, RetryingInvokeSurvivesReclamation) {
  fault::FaultPlan plan;
  plan.schedule.push_back({1.0, fault::FaultKind::kVmReclaim, -1, 0.0});
  Fixture f(plan, one_gpu_vm());
  fault::RetryPolicy policy;
  policy.jitter_frac = 0.0;
  ServerlessPlatform::InvokeResult result;
  f.platform.invoke_retrying(learner_opts(3.0), policy,
                             [&](const auto& r) { result = r; });
  f.engine.run();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 2u);
}

TEST(PlatformFault, ZeroFaultInjectorIsBitIdentical) {
  // The acceptance bar for the whole subsystem, at platform granularity:
  // attaching an injector with an empty plan changes nothing.
  auto run_once = [](bool attach) {
    sim::Engine engine;
    ServerlessPlatform platform(engine, ClusterSpec::regular(),
                                LatencyModel{}, 42);
    fault::FaultInjector injector(engine, fault::FaultPlan{});
    if (attach) platform.set_fault_injector(&injector);
    std::vector<ServerlessPlatform::InvokeResult> results;
    for (int i = 0; i < 16; ++i) {
      auto opts = learner_opts(0.3 + 0.01 * i);
      opts.payload_in_bytes = 1 << 16;
      platform.invoke(opts, [&](const auto& r) { results.push_back(r); });
    }
    engine.run();
    return results;
  };
  const auto with = run_once(true);
  const auto without = run_once(false);
  ASSERT_EQ(with.size(), without.size());
  for (std::size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i].start_time_s, without[i].start_time_s);
    EXPECT_EQ(with[i].end_time_s, without[i].end_time_s);
    EXPECT_EQ(with[i].compute_s, without[i].compute_s);
    EXPECT_EQ(with[i].billed_s, without[i].billed_s);
    EXPECT_EQ(with[i].cost_usd, without[i].cost_usd);
    EXPECT_TRUE(with[i].ok);
  }
}

}  // namespace
}  // namespace stellaris::serverless
