#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stellaris::fault {
namespace {

// FnKind integer values (the injector stays below the serverless layer).
constexpr int kLearner = 0;
constexpr int kActor = 2;

TEST(FaultInjector, ZeroFaultPlanIsANoOp) {
  sim::Engine engine;
  FaultInjector injector(engine, FaultPlan{});
  for (int i = 0; i < 100; ++i) {
    const auto fate = injector.on_invocation(kLearner);
    EXPECT_EQ(fate.fail, ErrorKind::kNone);
    EXPECT_DOUBLE_EQ(fate.straggler_mult, 1.0);
    EXPECT_DOUBLE_EQ(fate.cache_delay_s, 0.0);
  }
  EXPECT_EQ(injector.crashes_injected(), 0u);
  EXPECT_EQ(injector.stragglers_injected(), 0u);
  EXPECT_EQ(injector.cache_faults_injected(), 0u);
  EXPECT_FALSE(injector.reclaims_enabled());
}

TEST(FaultInjector, SamePlanSameSeedReplaysIdentically) {
  FaultPlan plan;
  plan.config.crash_prob = 0.3;
  plan.config.straggler_prob = 0.2;
  plan.config.cache_delay_prob = 0.1;
  auto run_once = [&] {
    sim::Engine engine;
    FaultInjector injector(engine, plan);
    std::vector<InvocationFault> fates;
    for (int i = 0; i < 200; ++i) fates.push_back(injector.on_invocation(kLearner));
    return fates;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fail, b[i].fail);
    EXPECT_DOUBLE_EQ(a[i].fail_frac, b[i].fail_frac);
    EXPECT_DOUBLE_EQ(a[i].straggler_mult, b[i].straggler_mult);
    EXPECT_DOUBLE_EQ(a[i].cache_delay_s, b[i].cache_delay_s);
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan a_plan, b_plan;
  a_plan.config.crash_prob = b_plan.config.crash_prob = 0.5;
  a_plan.config.seed = 1;
  b_plan.config.seed = 2;
  sim::Engine engine;
  FaultInjector a(engine, a_plan), b(engine, b_plan);
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i)
    diverged = a.on_invocation(kLearner).fail != b.on_invocation(kLearner).fail;
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, ScriptedTrapFiresOnceAtItsTime) {
  FaultPlan plan;
  plan.schedule.push_back({2.0, FaultKind::kCrash, kLearner, 0.25});
  sim::Engine engine;
  FaultInjector injector(engine, plan);

  // Before the trap's time: nothing.
  EXPECT_EQ(injector.on_invocation(kLearner).fail, ErrorKind::kNone);

  engine.schedule_at(2.5, [] {});
  engine.run();

  // Wrong fn_kind: the trap stays armed.
  EXPECT_EQ(injector.on_invocation(kActor).fail, ErrorKind::kNone);
  // Matching invocation: fires with the scripted crash fraction...
  const auto fate = injector.on_invocation(kLearner);
  EXPECT_EQ(fate.fail, ErrorKind::kCrash);
  EXPECT_DOUBLE_EQ(fate.fail_frac, 0.25);
  // ...exactly once.
  EXPECT_EQ(injector.on_invocation(kLearner).fail, ErrorKind::kNone);
  EXPECT_EQ(injector.crashes_injected(), 1u);
}

TEST(FaultInjector, ScriptedStragglerAndCacheTrapsCompose) {
  FaultPlan plan;
  plan.schedule.push_back({0.0, FaultKind::kStraggler, -1, 3.0});
  plan.schedule.push_back({0.0, FaultKind::kCacheDelay, -1, 0.2});
  sim::Engine engine;
  FaultInjector injector(engine, plan);
  const auto fate = injector.on_invocation(kLearner);
  EXPECT_EQ(fate.fail, ErrorKind::kNone);
  EXPECT_DOUBLE_EQ(fate.straggler_mult, 3.0);
  EXPECT_DOUBLE_EQ(fate.cache_delay_s, 0.2);
  EXPECT_EQ(injector.stragglers_injected(), 1u);
  // A delay is a slow-but-successful cache op, not a cache fault.
  EXPECT_EQ(injector.cache_faults_injected(), 0u);
  EXPECT_EQ(injector.cache_delays_injected(), 1u);
}

TEST(FaultInjector, PoissonReclaimsFireAndDisarmStopsThem) {
  FaultPlan plan;
  plan.config.reclaim_rate_per_hour = 3600.0;  // ~1/s
  sim::Engine engine;
  FaultInjector injector(engine, plan);
  ASSERT_TRUE(injector.reclaims_enabled());
  std::uint64_t fired = 0;
  injector.arm_reclaims([&](Rng&) { ++fired; });
  engine.run_until(30.0);
  EXPECT_GT(fired, 0u);
  EXPECT_EQ(injector.reclaims_fired(), fired);

  // Disarm cancels the pending self-rescheduling timer: the queue drains
  // without the clock being dragged to the next arrival.
  injector.disarm();
  const double t = engine.now();
  const std::uint64_t before = injector.reclaims_fired();
  engine.run();
  EXPECT_EQ(injector.reclaims_fired(), before);
  EXPECT_DOUBLE_EQ(engine.now(), t);
}

TEST(FaultInjector, ScheduledReclaimFiresAtExactTime) {
  FaultPlan plan;
  plan.schedule.push_back({5.0, FaultKind::kVmReclaim, -1, 0.0});
  sim::Engine engine;
  FaultInjector injector(engine, plan);
  double fired_at = -1.0;
  injector.arm_reclaims([&](Rng&) { fired_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
  EXPECT_EQ(injector.reclaims_fired(), 1u);
}

TEST(SimulateRetries, NoFaultsPassThrough) {
  Rng rng(3);
  const auto out = simulate_retries(1.5, FaultConfig{}, RetryPolicy{}, rng);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_DOUBLE_EQ(out.elapsed_s, 1.5);
  EXPECT_DOUBLE_EQ(out.wasted_s, 0.0);
}

TEST(SimulateRetries, FailedAttemptsAddElapsedAndWaste) {
  FaultConfig cfg;
  cfg.crash_prob = 0.5;
  RetryPolicy policy;
  policy.jitter_frac = 0.0;
  Rng rng(11);
  double total_elapsed = 0.0;
  bool saw_retry = false;
  for (int i = 0; i < 200; ++i) {
    const auto out = simulate_retries(1.0, cfg, policy, rng);
    total_elapsed += out.elapsed_s;
    if (out.attempts > 1) {
      saw_retry = true;
      if (out.ok) {
        // n-1 failed attempts (partial) + backoffs + 1 full success.
        EXPECT_GT(out.elapsed_s, 1.0);
        EXPECT_GT(out.wasted_s, 0.0);
      }
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_GT(total_elapsed, 200.0);  // failures only ever add time
}

TEST(SimulateRetries, DeadlineAbandonsTheChain) {
  FaultConfig cfg;
  cfg.crash_prob = 0.9;  // almost certainly needs retries
  RetryPolicy policy;
  policy.base_backoff_s = 10.0;
  policy.jitter_frac = 0.0;
  policy.deadline_s = 5.0;  // first backoff already exceeds it
  Rng rng(5);
  bool saw_deadline = false;
  for (int i = 0; i < 50 && !saw_deadline; ++i) {
    const auto out = simulate_retries(1.0, cfg, policy, rng);
    if (!out.ok) {
      EXPECT_EQ(out.error, ErrorKind::kDeadline);
      EXPECT_LE(out.elapsed_s, policy.deadline_s);
      saw_deadline = true;
    }
  }
  EXPECT_TRUE(saw_deadline);
}

}  // namespace
}  // namespace stellaris::fault
