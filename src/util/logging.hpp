// Minimal leveled logger.
//
// Thread-safe (one mutex around the sink), with a process-wide level so the
// benchmark harness can silence training chatter. Messages are composed via
// streaming into a temporary, so disabled levels cost a branch.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace stellaris {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log configuration. Defaults to kInfo on stderr.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Emit a pre-formatted line at `level` (no-op below threshold).
  void write(LogLevel level, const std::string& msg);

 private:
  Logger() = default;
  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::kInfo;
};

namespace detail {
/// RAII line builder: streams into a buffer, flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace stellaris

#define STELLARIS_LOG(severity)                                    \
  if (static_cast<int>(::stellaris::Logger::instance().level()) <= \
      static_cast<int>(::stellaris::LogLevel::severity))           \
  ::stellaris::detail::LogLine(::stellaris::LogLevel::severity)

#define LOG_DEBUG STELLARIS_LOG(kDebug)
#define LOG_INFO STELLARIS_LOG(kInfo)
#define LOG_WARN STELLARIS_LOG(kWarn)
#define LOG_ERROR STELLARIS_LOG(kError)
