// Trace recorder — Chrome `trace_event` JSON over the simulator's virtual
// clock.
//
// Every span and instant event carries an explicit timestamp in *virtual*
// seconds (the discrete-event engine's clock), so a whole training run can
// be captured and inspected in Perfetto / chrome://tracing regardless of
// how fast the host replayed it. Tracks ("threads" in the Chrome format)
// are registered by name — one per container slot, actor, or logical
// pipeline stage — and named via `thread_name` metadata events so the
// viewer labels them.
//
// The recorder buffers events in memory behind one mutex (tracing is an
// opt-in diagnostic mode; the hot paths only pay an atomic pointer load +
// branch when tracing is off — see obs/obs.hpp) and serializes to the
// JSON-object form `{"traceEvents":[...]}` on demand.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "util/annotated_mutex.hpp"

namespace stellaris::obs {

/// One key/value argument attached to a trace event. The value is rendered
/// to a JSON fragment eagerly so emission does no formatting work later.
struct TraceArg {
  TraceArg(std::string k, const char* v);
  TraceArg(std::string k, const std::string& v);
  TraceArg(std::string k, bool v);
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  TraceArg(std::string k, T v) : key(std::move(k)) {
    if constexpr (std::is_integral_v<T>) {
      json = std::to_string(v);
    } else {
      json = render_double(static_cast<double>(v));
    }
  }

  static std::string render_double(double v);

  std::string key;
  std::string json;  ///< pre-rendered JSON value (number, string, bool)
};

using TraceArgs = std::vector<TraceArg>;
using TrackId = std::uint32_t;

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Register (or look up) a named track. Idempotent: the same name always
  /// maps to the same id. Emits the `thread_name` metadata event on first
  /// registration.
  TrackId track(const std::string& name) EXCLUDES(mu_);

  /// Complete span ("X" phase): [t0_s, t1_s] in virtual seconds.
  void complete(TrackId tid, const std::string& name, const char* category,
                double t0_s, double t1_s, TraceArgs args = {});

  /// Instant event ("i" phase, thread scope).
  void instant(TrackId tid, const std::string& name, const char* category,
               double t_s, TraceArgs args = {});

  /// Counter sample ("C" phase): a named value-over-time series.
  void counter(const std::string& name, double t_s, double value);

  /// Number of buffered events (metadata events included).
  std::size_t size() const EXCLUDES(mu_);

  /// Serialize all buffered events as `{"traceEvents":[...]}`.
  void write_json(std::ostream& os) const EXCLUDES(mu_);

  /// write_json to `path`; returns false (and leaves no partial file
  /// guarantee) if the file cannot be opened.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    char ph = 'X';       // X=complete, i=instant, C=counter, M=metadata
    TrackId tid = 0;
    double ts_us = 0.0;  // microseconds of virtual time
    double dur_us = 0.0; // X only
    std::string name;
    const char* cat = nullptr;
    TraceArgs args;
  };

  void push(Event ev) EXCLUDES(mu_);

  mutable Mutex mu_{"obs/trace-recorder", lock_rank::kTraceRecorder};
  // Name→id lookup only; serialization iterates events_ (a vector, in
  // insertion order), never this map. lint:unordered-ok
  std::unordered_map<std::string, TrackId> tracks_ GUARDED_BY(mu_);
  std::vector<Event> events_ GUARDED_BY(mu_);
};

}  // namespace stellaris::obs
