#include "core/gradient.hpp"

namespace stellaris::core {

std::vector<std::uint8_t> GradientMsg::serialize() const {
  ByteWriter w;
  w.put_f32_vector(grad);
  w.put_u64(learner_id);
  w.put_u64(pulled_version);
  w.put_f64(mean_ratio);
  w.put_u64(batch_size);
  w.put_f64(kl);
  w.put_f64(compute_time_s);
  return w.take();
}

GradientMsg GradientMsg::deserialize(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  GradientMsg m;
  m.grad = r.get_f32_vector();
  m.learner_id = r.get_u64();
  m.pulled_version = r.get_u64();
  m.mean_ratio = r.get_f64();
  m.batch_size = r.get_u64();
  m.kl = r.get_f64();
  m.compute_time_s = r.get_f64();
  return m;
}

}  // namespace stellaris::core
