# Empty compiler generated dependencies file for fig07_impact.
# This may be replaced when dependencies are built.
